"""Tests for the traffic vectorizer (slots, aggregation, normalisation, API)."""

import numpy as np
import pytest

from repro.ingest.records import TrafficRecord
from repro.synth.traffic import TowerTrafficMatrix
from repro.utils.timeutils import SLOT_SECONDS, TimeWindow
from repro.vectorize.aggregate import aggregate_records, aggregate_records_streaming
from repro.vectorize.normalize import NormalizationMethod, normalize_matrix, normalize_vector
from repro.vectorize.slots import slot_edges, slot_span_of_record, split_bytes_over_slots
from repro.vectorize.vectorizer import TrafficVectorizer, VectorizedTraffic


def make_record(start, end, volume=100.0, user=1, tower=0):
    return TrafficRecord(
        user_id=user, tower_id=tower, start_s=start, end_s=end, bytes_used=volume
    )


class TestSlots:
    def test_slot_edges(self):
        edges = slot_edges(3)
        assert np.array_equal(edges, np.array([0.0, 600.0, 1200.0, 1800.0]))

    def test_slot_edges_invalid(self):
        with pytest.raises(ValueError):
            slot_edges(0)

    def test_span_single_slot(self):
        record = make_record(10.0, 500.0)
        assert slot_span_of_record(record) == (0, 0)

    def test_span_crossing_boundary(self):
        record = make_record(500.0, 700.0)
        assert slot_span_of_record(record) == (0, 1)

    def test_span_ending_exactly_on_boundary(self):
        record = make_record(0.0, 600.0)
        assert slot_span_of_record(record) == (0, 0)

    def test_span_instantaneous(self):
        record = make_record(650.0, 650.0)
        assert slot_span_of_record(record) == (1, 1)

    def test_split_conserves_volume(self):
        record = make_record(300.0, 1500.0, volume=120.0)
        contributions = split_bytes_over_slots(record, 10)
        assert sum(v for _, v in contributions) == pytest.approx(120.0)

    def test_split_proportional_to_overlap(self):
        record = make_record(300.0, 900.0, volume=100.0)  # half in slot 0, half in slot 1
        contributions = dict(split_bytes_over_slots(record, 10))
        assert contributions[0] == pytest.approx(50.0)
        assert contributions[1] == pytest.approx(50.0)

    def test_split_outside_window_dropped(self):
        record = make_record(500.0, 1300.0, volume=90.0)
        contributions = dict(split_bytes_over_slots(record, 1))
        assert set(contributions) == {0}
        assert contributions[0] == pytest.approx(90.0 * 100.0 / 800.0)

    def test_split_invalid_num_slots(self):
        with pytest.raises(ValueError):
            split_bytes_over_slots(make_record(0.0, 1.0), 0)


class TestAggregate:
    def test_basic_aggregation(self):
        window = TimeWindow(num_days=1)
        records = [
            make_record(0.0, 300.0, 60.0, tower=0),
            make_record(100.0, 200.0, 40.0, tower=0),
            make_record(700.0, 800.0, 10.0, tower=1),
        ]
        matrix = aggregate_records(records, window)
        assert matrix.num_towers == 2
        assert matrix.traffic[0, 0] == pytest.approx(100.0)
        assert matrix.traffic[1, 1] == pytest.approx(10.0)

    def test_total_volume_conserved(self):
        window = TimeWindow(num_days=1)
        rng = np.random.default_rng(3)
        records = [
            make_record(float(s), float(s) + float(d), float(v), tower=int(t))
            for s, d, v, t in zip(
                rng.uniform(0, 80_000, 300),
                rng.uniform(1, 3000, 300),
                rng.uniform(1, 100, 300),
                rng.integers(0, 5, 300),
            )
        ]
        # Clamp ends inside the window so no volume is dropped.
        records = [
            r if r.end_s <= window.num_seconds else make_record(r.start_s, window.num_seconds, r.bytes_used, tower=r.tower_id)
            for r in records
        ]
        matrix = aggregate_records(records, window)
        assert matrix.traffic.sum() == pytest.approx(sum(r.bytes_used for r in records))

    def test_explicit_tower_ids_and_zero_rows(self):
        window = TimeWindow(num_days=1)
        records = [make_record(0.0, 10.0, 5.0, tower=3)]
        matrix = aggregate_records(records, window, tower_ids=[3, 7])
        assert matrix.num_towers == 2
        assert matrix.traffic[1].sum() == 0.0

    def test_unlisted_towers_ignored(self):
        window = TimeWindow(num_days=1)
        records = [make_record(0.0, 10.0, 5.0, tower=3), make_record(0.0, 10.0, 5.0, tower=9)]
        matrix = aggregate_records(records, window, tower_ids=[3])
        assert matrix.num_towers == 1
        assert matrix.traffic.sum() == pytest.approx(5.0)

    def test_no_split_attributes_to_start_slot(self):
        window = TimeWindow(num_days=1)
        records = [make_record(500.0, 1500.0, 100.0)]
        matrix = aggregate_records(records, window, split_across_slots=False)
        assert matrix.traffic[0, 0] == pytest.approx(100.0)
        assert matrix.traffic[0, 1] == 0.0

    def test_streaming_matches_in_memory(self):
        window = TimeWindow(num_days=1)
        rng = np.random.default_rng(5)
        records = [
            make_record(float(s), float(s) + 60.0, float(v), tower=int(t))
            for s, v, t in zip(
                rng.uniform(0, 80_000, 500), rng.uniform(1, 100, 500), rng.integers(0, 4, 500)
            )
        ]
        in_memory = aggregate_records(records, window, tower_ids=[0, 1, 2, 3])
        streaming = aggregate_records_streaming(iter(records), window, [0, 1, 2, 3], chunk_size=64)
        assert np.allclose(in_memory.traffic, streaming.traffic)

    def test_streaming_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            aggregate_records_streaming([], TimeWindow(num_days=1), [0], chunk_size=0)


class TestNormalize:
    def test_zscore_rows(self):
        matrix = np.array([[1.0, 2.0, 3.0], [5.0, 5.0, 5.0]])
        out = normalize_matrix(matrix, NormalizationMethod.ZSCORE)
        assert np.mean(out[0]) == pytest.approx(0.0, abs=1e-12)
        assert np.all(out[1] == 0.0)

    def test_max_rows(self):
        matrix = np.array([[1.0, 2.0, 4.0], [0.0, 0.0, 0.0]])
        out = normalize_matrix(matrix, NormalizationMethod.MAX)
        assert out[0, 2] == 1.0
        assert np.all(out[1] == 0.0)

    def test_minmax_vector(self):
        out = normalize_vector(np.array([2.0, 3.0, 4.0]), NormalizationMethod.MINMAX)
        assert out[0] == 0.0 and out[-1] == 1.0

    def test_none_is_identity(self):
        values = np.array([1.0, 5.0])
        assert np.array_equal(normalize_vector(values, NormalizationMethod.NONE), values)

    def test_matrix_requires_2d(self):
        with pytest.raises(ValueError):
            normalize_matrix(np.ones(5), NormalizationMethod.ZSCORE)


class TestVectorizer:
    def test_from_matrix_keeps_raw(self, scenario):
        vectorizer = TrafficVectorizer()
        vectorized = vectorizer.from_matrix(scenario.traffic)
        assert isinstance(vectorized, VectorizedTraffic)
        assert vectorized.raw is scenario.traffic
        assert vectorized.vectors.shape == scenario.traffic.traffic.shape
        # z-scored rows have ~zero mean
        assert np.allclose(vectorized.vectors.mean(axis=1), 0.0, atol=1e-9)

    def test_vector_lookup(self, scenario):
        vectorized = TrafficVectorizer().from_matrix(scenario.traffic)
        tower_id = int(scenario.traffic.tower_ids[7])
        assert np.array_equal(vectorized.vector(tower_id), vectorized.vectors[7])
        with pytest.raises(KeyError):
            vectorized.vector(123456)

    def test_from_records_matches_manual_aggregation(self):
        window = TimeWindow(num_days=1)
        records = [
            make_record(0.0, 300.0, 60.0, tower=0),
            make_record(700.0, 900.0, 30.0, tower=1),
        ]
        vectorized = TrafficVectorizer(method=NormalizationMethod.NONE).from_records(
            records, window
        )
        manual = aggregate_records(records, window)
        assert np.allclose(vectorized.vectors, manual.traffic)

    def test_paper_dimensions(self):
        # 28 days at 10-minute granularity = 4032 dimensions (Section 3.2).
        window = TimeWindow(num_days=28)
        records = [make_record(0.0, 100.0, 5.0, tower=0)]
        vectorized = TrafficVectorizer().from_records(records, window)
        assert vectorized.num_slots == 4032
