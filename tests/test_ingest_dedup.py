"""Tests for repro.ingest.dedup."""

import numpy as np
import pytest

from repro.ingest.dedup import (
    clean_records,
    deduplicate_records,
    first_strategy,
    max_strategy,
    median_strategy,
    resolve_conflicts,
)
from repro.ingest.records import TrafficRecord


def make_record(user=1, tower=2, start=0.0, end=60.0, volume=100.0, network="LTE"):
    return TrafficRecord(
        user_id=user, tower_id=tower, start_s=start, end_s=end, bytes_used=volume, network=network
    )


class TestDeduplicate:
    def test_removes_exact_duplicates(self):
        record = make_record()
        cleaned, removed = deduplicate_records([record, record, record])
        assert len(cleaned) == 1
        assert removed == 2

    def test_keeps_distinct_records(self):
        a = make_record(start=0.0)
        b = make_record(start=120.0, end=180.0)
        cleaned, removed = deduplicate_records([a, b])
        assert len(cleaned) == 2
        assert removed == 0

    def test_preserves_first_seen_order(self):
        a = make_record(user=1)
        b = make_record(user=2)
        cleaned, _ = deduplicate_records([b, a, b])
        assert cleaned == [b, a]

    def test_different_bytes_not_exact_duplicates(self):
        a = make_record(volume=100.0)
        b = make_record(volume=200.0)
        cleaned, removed = deduplicate_records([a, b])
        assert len(cleaned) == 2 and removed == 0

    def test_empty_input(self):
        cleaned, removed = deduplicate_records([])
        assert cleaned == [] and removed == 0


class TestResolveConflicts:
    def test_median_resolution(self):
        records = [make_record(volume=v) for v in (100.0, 300.0, 200.0)]
        resolved, groups, removed = resolve_conflicts(records)
        assert groups == 1
        assert removed == 2
        assert len(resolved) == 1
        assert resolved[0].bytes_used == 200.0

    def test_max_strategy(self):
        records = [make_record(volume=v) for v in (100.0, 300.0)]
        resolved, _, _ = resolve_conflicts(records, strategy=max_strategy)
        assert resolved[0].bytes_used == 300.0

    def test_first_strategy(self):
        records = [make_record(volume=v) for v in (100.0, 300.0)]
        resolved, _, _ = resolve_conflicts(records, strategy=first_strategy)
        assert resolved[0].bytes_used == 100.0

    def test_non_conflicting_records_untouched(self):
        a = make_record(user=1)
        b = make_record(user=2)
        resolved, groups, removed = resolve_conflicts([a, b])
        assert resolved == [a, b]
        assert groups == 0 and removed == 0

    def test_identical_copies_counted_as_removed_not_conflicts(self):
        a = make_record()
        resolved, groups, removed = resolve_conflicts([a, a])
        assert len(resolved) == 1
        assert groups == 0
        assert removed == 1


class TestCleanRecords:
    def test_combined_report(self):
        base = make_record()
        conflict = base.with_bytes(999.0)
        other = make_record(user=7, start=600.0, end=660.0)
        records = [base, base, conflict, other]
        cleaned, report = clean_records(records)
        assert report.num_input_records == 4
        assert report.num_exact_duplicates_removed == 1
        assert report.num_conflict_groups == 1
        assert report.num_conflict_records_removed == 1
        assert report.num_output_records == 2
        assert len(cleaned) == 2

    def test_duplicate_fraction(self):
        base = make_record()
        _, report = clean_records([base, base, base, base])
        assert report.duplicate_fraction == pytest.approx(0.75)

    def test_clean_recovers_total_volume_up_to_conflicts(self):
        rng = np.random.default_rng(0)
        originals = [
            make_record(user=i, start=float(i) * 100, end=float(i) * 100 + 50, volume=float(v))
            for i, v in enumerate(rng.integers(10, 1000, size=200))
        ]
        corrupted = originals + originals[:40]  # pure duplicates
        cleaned, report = clean_records(corrupted)
        assert report.num_exact_duplicates_removed == 40
        assert sum(r.bytes_used for r in cleaned) == pytest.approx(
            sum(r.bytes_used for r in originals)
        )
