"""Tests for the telemetry plane (repro.obs): tracer, metrics, rendering."""

import json
import math

import numpy as np
import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
)
from repro.viz.ascii import render_trace_tree


class FakeClock:
    """A monotonic clock advancing by a fixed step per call."""

    def __init__(self, step=1.0, start=0.0):
        self.now = start - step
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def deterministic_tracer():
    """A tracer whose wall/cpu clocks tick exactly 1.0 / 0.5 s per call."""
    return Tracer(clock=FakeClock(1.0), cpu_clock=FakeClock(0.5))


class TestTracerNesting:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner", "sibling"]
        assert root.children[0].children == []

    def test_current_tracks_the_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_attributes_and_counters(self):
        tracer = Tracer()
        with tracer.span("work", flavour="test") as span:
            span.set("towers", 40)
            span.count("records", 10)
            span.count("records", 5)
        assert span.attributes == {"flavour": "test", "towers": 40}
        assert span.counters == {"records": 15}

    def test_find_walks_the_whole_tree(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert tracer.find("c").name == "c"
        assert tracer.find("nope") is None

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.roots] == ["first", "second"]


class TestTracerExceptionSafety:
    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("fragile"):
                raise ValueError("boom")
        (span,) = tracer.roots
        assert span.status == "error"
        assert "boom" in span.error
        assert span.wall_seconds >= 0.0

    def test_exception_unwinds_the_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("deep failure")
        assert tracer.current is None
        (outer,) = tracer.roots
        assert outer.status == "error"
        assert outer.children[0].status == "error"

    def test_successful_span_is_ok(self):
        tracer = Tracer()
        with tracer.span("fine"):
            pass
        assert tracer.roots[0].status == "ok"
        assert tracer.roots[0].error is None


class TestInjectableClockDeterminism:
    def test_single_span_timings_are_exact(self):
        tracer = deterministic_tracer()
        # Clock calls: epoch=0; enter=1 (start_s); exit=2 (wall = 2-0-1 = 1).
        with tracer.span("only"):
            pass
        (span,) = tracer.roots
        assert span.start_s == 1.0
        assert span.wall_seconds == 1.0
        assert span.cpu_seconds == 0.5

    def test_nested_span_timings_are_exact(self):
        tracer = deterministic_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.roots
        (inner,) = outer.children
        # epoch=0, outer enters at 1, inner at 2, inner exits at 3 (wall 1),
        # outer exits at 4 (wall 3): the parent strictly covers the child.
        assert inner.start_s == 2.0
        assert inner.wall_seconds == 1.0
        assert outer.wall_seconds == 3.0
        assert outer.wall_seconds > inner.wall_seconds

    def test_two_runs_with_fake_clocks_produce_identical_dicts(self):
        def run():
            tracer = deterministic_tracer()
            with tracer.span("fit") as span:
                span.count("records", 7)
                with tracer.span("cluster"):
                    pass
            return tracer.to_dict()

        assert run() == run()


class TestAttachAndWorkerMergeOrdering:
    def test_attach_grafts_finished_spans_in_call_order(self):
        tracer = deterministic_tracer()
        with tracer.span("ingest"):
            for worker_id in (0, 1, 2):
                tracer.attach(
                    f"worker-{worker_id}",
                    wall_seconds=2.5,
                    cpu_seconds=1.25,
                    counters={"chunks": 4, "records_seen": 100 + worker_id},
                )
        (ingest,) = tracer.roots
        names = [child.name for child in ingest.children]
        assert names == ["worker-0", "worker-1", "worker-2"]
        assert ingest.children[1].wall_seconds == 2.5
        assert ingest.children[1].counters["records_seen"] == 101

    def test_attach_without_open_span_becomes_a_root(self):
        tracer = Tracer()
        tracer.attach("orphan", wall_seconds=1.0)
        assert [span.name for span in tracer.roots] == ["orphan"]

    def test_parallel_ingest_worker_spans_are_deterministically_ordered(self):
        from repro.ingest.batch import RecordBatch
        from repro.utils.timeutils import TimeWindow
        from repro.vectorize.parallel import parallel_aggregate_batches_with_stats

        window = TimeWindow(num_days=2)
        rng = np.random.default_rng(5)

        def batches(n_batches=6, n=500):
            for _ in range(n_batches):
                starts = rng.uniform(0, window.num_seconds, size=n)
                yield RecordBatch(
                    user_id=rng.integers(0, 50, size=n),
                    tower_id=rng.integers(0, 10, size=n),
                    start_s=starts,
                    end_s=starts + rng.uniform(0, 600, size=n),
                    bytes_used=rng.uniform(1, 1e4, size=n),
                    network=np.zeros(n, dtype=np.uint8),
                )

        tracer = Tracer()
        metrics = MetricsRegistry()
        with tracer.span("ingest"):
            _, stats = parallel_aggregate_batches_with_stats(
                batches(),
                window,
                list(range(10)),
                workers=2,
                tracer=tracer,
                metrics=metrics,
            )
        (ingest,) = tracer.roots
        names = [child.name for child in ingest.children]
        assert names == ["worker-0", "worker-1"]
        seen = sum(child.counters["records_seen"] for child in ingest.children)
        assert seen == stats.records_seen == 6 * 500
        assert metrics.counter("ingest.records_seen").snapshot() == seen


class TestTraceExport:
    def test_to_dict_schema(self):
        tracer = deterministic_tracer()
        with tracer.span("fit") as span:
            span.set("towers", 3)
            span.count("records", 9)
        payload = tracer.to_dict()
        assert payload["schema"] == TRACE_SCHEMA == "repro-trace"
        assert payload["schema_version"] == TRACE_SCHEMA_VERSION == 1
        assert "package_version" in payload
        (root,) = payload["spans"]
        assert root["name"] == "fit"
        assert root["wall_s"] == 1.0
        assert root["status"] == "ok"
        assert root["attributes"] == {"towers": 3}
        assert root["counters"] == {"records": 9}
        assert root["children"] == []

    def test_to_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("cluster"):
                pass
        payload = json.loads(tracer.to_json())
        assert payload == tracer.to_dict()

    def test_write_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("fit"):
            pass
        target = tracer.write_json(tmp_path / "trace.json")
        assert json.loads(target.read_text())["spans"][0]["name"] == "fit"


class TestNullTracer:
    def test_is_disabled_and_stateless(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything") as span:
            span.set("key", "value")
            span.count("n", 3)
        assert NULL_TRACER.current is span
        assert NULL_TRACER.find("anything") is None
        assert NullTracer().to_dict()["spans"] == []

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("fragile"):
                raise ValueError("still visible")


class TestMemoryTracing:
    def test_span_records_allocation_peak(self):
        tracer = Tracer(trace_memory=True)
        with tracer.span("alloc"):
            buffer = np.zeros(1_000_000)  # ~8 MB
            del buffer
        (span,) = tracer.roots
        assert span.mem_peak_bytes is not None
        assert span.mem_peak_bytes > 4_000_000

    def test_parent_peak_covers_child(self):
        tracer = Tracer(trace_memory=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                buffer = np.zeros(1_000_000)
                del buffer
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert outer.mem_peak_bytes >= inner.mem_peak_bytes > 0


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = Counter("records")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("records").inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = Gauge("depth")
        gauge.set(3.5)
        gauge.set(2.0)
        assert gauge.snapshot() == 2.0


class TestHistogramQuantiles:
    def test_observation_on_a_bound_lands_in_its_bucket(self):
        # Right-closed buckets: the first bound >= value owns the value.
        hist = Histogram("lat", buckets=(10.0, 20.0, 30.0))
        hist.observe(10.0)
        hist.observe(20.0)
        hist.observe(30.0)
        assert hist.bucket_counts == [1, 1, 1, 0]

    def test_quantiles_interpolate_within_buckets(self):
        hist = Histogram("lat", buckets=(10.0, 20.0, 30.0))
        hist.observe(5.0)
        hist.observe(15.0)
        # rank(q=0.5) = 1 falls on the first bucket: interpolates from the
        # observed min (5) to the bucket bound (10).
        assert hist.quantile(0.5) == 10.0
        # rank(q=1.0) = 2 falls on the second bucket, clamped to max = 15.
        assert hist.quantile(1.0) == 15.0

    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        hist.observe(1000.0)  # overflow bucket
        assert hist.quantile(0.5) == 1000.0
        assert hist.quantile(0.99) == 1000.0

    def test_single_value_histogram_is_degenerate(self):
        hist = Histogram("lat", buckets=(10.0,))
        for _ in range(5):
            hist.observe(7.0)
        assert hist.quantile(0.5) == 7.0
        assert hist.snapshot()["p99"] == 7.0

    def test_empty_histogram_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["p50"] is None
        assert math.isnan(Histogram("lat").quantile(0.5))

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())

    def test_snapshot_summary(self):
        hist = Histogram("lat", buckets=(10.0, 20.0))
        hist.observe(4.0)
        hist.observe(16.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == 20.0
        assert snap["min"] == 4.0
        assert snap["max"] == 16.0


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]  # sorted
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert "h" in registry and len(registry) == 4


class TestRenderTraceTree:
    def test_renders_nested_spans_with_connectors(self):
        tracer = deterministic_tracer()
        with tracer.span("fit") as span:
            span.set("towers", 3)
            with tracer.span("cluster") as child:
                child.count("merges", 2)
            with tracer.span("decompose"):
                pass
        text = render_trace_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("fit")
        assert "towers=3" in lines[0]
        assert lines[1].startswith("├─ cluster")
        assert "merges=2" in lines[1]
        assert lines[2].startswith("└─ decompose")

    def test_renders_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("fragile"):
                raise RuntimeError("kaput")
        text = render_trace_tree(tracer)
        assert "ERROR" in text and "kaput" in text

    def test_accepts_trace_dict_and_span_dict(self):
        tracer = Tracer()
        with tracer.span("fit"):
            pass
        payload = tracer.to_dict()
        assert render_trace_tree(payload) == render_trace_tree(tracer)
        assert render_trace_tree(payload["spans"][0]).startswith("fit")

    def test_empty_and_invalid_traces(self):
        assert render_trace_tree(Tracer()) == "(empty trace)"
        with pytest.raises(TypeError):
            render_trace_tree(42)


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def traced_fit(self):
        from repro.core.model import TrafficPatternModel
        from repro.synth.scenario import ScenarioConfig, generate_scenario

        scenario = generate_scenario(
            ScenarioConfig(num_towers=15, num_users=40, num_days=7, seed=2)
        )
        tracer = Tracer()
        model = TrafficPatternModel()
        result = model.fit(scenario.traffic, city=scenario.city, tracer=tracer)
        return tracer, result

    def test_fit_root_covers_all_six_stages(self, traced_fit):
        tracer, _ = traced_fit
        (root,) = tracer.roots
        assert root.name == "fit"
        assert [child.name for child in root.children] == [
            "vectorize", "cluster", "tune", "label", "spectral", "decompose",
        ]

    def test_stage_timings_extras_match_the_spans(self, traced_fit):
        # Satellite 1: the legacy extras keys stay populated and are now a
        # projection of the span tree.
        tracer, result = traced_fit
        (root,) = tracer.roots
        timings = result.extras["stage_timings"]
        assert list(timings) == [child.name for child in root.children]
        for child in root.children:
            assert timings[child.name] == pytest.approx(child.wall_seconds)

    def test_stage_spans_carry_counters(self, traced_fit):
        tracer, _ = traced_fit
        cluster = tracer.find("cluster")
        assert cluster.counters["merges"] == 14
        assert cluster.attributes["towers"] == 15

    def test_untraced_fit_produces_equal_result(self):
        from repro.core.model import TrafficPatternModel
        from repro.synth.scenario import ScenarioConfig, generate_scenario

        scenario = generate_scenario(
            ScenarioConfig(num_towers=12, num_users=30, num_days=7, seed=8)
        )
        plain = TrafficPatternModel().fit(scenario.traffic)
        traced = TrafficPatternModel().fit(scenario.traffic, tracer=Tracer())
        np.testing.assert_array_equal(plain.labels, traced.labels)
        np.testing.assert_array_equal(
            plain.vectorized.vectors, traced.vectorized.vectors
        )


class TestServerIntegration:
    @pytest.fixture(scope="class")
    def server(self):
        from repro.core.model import TrafficPatternModel
        from repro.io.server import ModelServer
        from repro.synth.scenario import ScenarioConfig, generate_scenario

        scenario = generate_scenario(
            ScenarioConfig(num_towers=15, num_users=40, num_days=7, seed=2)
        )
        model = TrafficPatternModel()
        model.fit(scenario.traffic, city=scenario.city)
        return ModelServer(model, tracer=Tracer(), metrics=MetricsRegistry())

    def test_stats_schema_is_registry_backed(self, server):
        tower = server.tower_ids()[0]
        server.decompose(tower)  # miss
        server.decompose(tower)  # hit
        stats = server.stats()
        assert stats["queries"] >= 2
        assert stats["decompose_cache_hits"] >= 1
        assert stats["decompose_cache_misses"] >= 1
        assert stats["decompose_cache_size"] == 1
        latency = stats["query_latency"]
        assert latency["count"] == stats["queries"]
        assert latency["p50"] is not None

    def test_each_query_records_a_span(self, server):
        names = [span.name for span in server._tracer.roots]
        assert "query:decompose" in names
