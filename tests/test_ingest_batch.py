"""Tests for the columnar record-batch data plane (repro.ingest.batch) and
the chunked batch readers/writers in repro.ingest.loader."""

import numpy as np
import pytest

from repro.ingest.batch import (
    NETWORK_CODES,
    RecordBatch,
    batch_from_record_iter,
    decode_networks,
    encode_networks,
)
from repro.ingest.loader import (
    TraceFormatError,
    iter_record_batches_csv,
    iter_record_batches_jsonl,
    read_record_batch_csv,
    read_record_batch_jsonl,
    read_records_csv,
    read_records_jsonl,
    write_records_csv,
    write_records_jsonl,
)
from repro.ingest.records import TrafficRecord


def make_records(n=20, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for _ in range(n):
        start = float(rng.uniform(0, 5000))
        records.append(
            TrafficRecord(
                user_id=int(rng.integers(0, 10)),
                tower_id=int(rng.integers(0, 5)),
                start_s=start,
                end_s=start + float(rng.exponential(300)),
                bytes_used=float(rng.lognormal(8, 1)),
                network="LTE" if rng.random() < 0.7 else "3G",
            )
        )
    return records


class TestNetworkCodes:
    def test_encode_decode_roundtrip(self):
        labels = np.array(["LTE", "3G", "LTE"])
        codes = encode_networks(labels)
        assert codes.dtype == np.uint8
        assert list(decode_networks(codes)) == ["LTE", "3G", "LTE"]

    def test_encode_accepts_integer_codes(self):
        codes = encode_networks(np.array([0, 1], dtype=np.uint8))
        assert codes.tolist() == [0, 1]

    def test_encode_rejects_unknown_label(self):
        with pytest.raises(ValueError, match="5G"):
            encode_networks(np.array(["LTE", "5G"]))

    def test_encode_rejects_out_of_range_integer_codes(self):
        # 256 would silently wrap to 0 ("3G") through a bare uint8 cast
        with pytest.raises(ValueError, match="record 1"):
            encode_networks(np.array([1, 256], dtype=np.int64))
        with pytest.raises(ValueError, match="record 0"):
            encode_networks(np.array([-1], dtype=np.int64))


class TestRecordBatch:
    def test_roundtrip_preserves_records(self):
        records = make_records(50)
        batch = RecordBatch.from_records(records)
        assert len(batch) == 50
        assert batch.num_records == 50
        assert batch.to_records() == records

    def test_column_dtypes(self):
        batch = RecordBatch.from_records(make_records(5))
        assert batch.user_id.dtype == np.int64
        assert batch.tower_id.dtype == np.int64
        assert batch.start_s.dtype == np.float64
        assert batch.end_s.dtype == np.float64
        assert batch.bytes_used.dtype == np.float64
        assert batch.network.dtype == np.uint8

    def test_accepts_string_network_column(self):
        batch = RecordBatch(
            user_id=[1],
            tower_id=[2],
            start_s=[0.0],
            end_s=[10.0],
            bytes_used=[100.0],
            network=np.array(["3G"]),
        )
        assert batch.network.tolist() == [NETWORK_CODES["3G"]]
        assert batch.network_labels().tolist() == ["3G"]

    def test_empty(self):
        batch = RecordBatch.empty()
        assert len(batch) == 0
        assert batch.to_records() == []
        assert batch.total_bytes == 0.0

    def test_validation_mirrors_record_invariants(self):
        with pytest.raises(ValueError, match="start_s must be non-negative"):
            RecordBatch(
                user_id=[1], tower_id=[1], start_s=[-1.0], end_s=[1.0],
                bytes_used=[1.0], network=["LTE"],
            )
        with pytest.raises(ValueError, match="must not precede"):
            RecordBatch(
                user_id=[1], tower_id=[1], start_s=[5.0], end_s=[1.0],
                bytes_used=[1.0], network=["LTE"],
            )
        with pytest.raises(ValueError, match="bytes_used must be non-negative"):
            RecordBatch(
                user_id=[1], tower_id=[1], start_s=[0.0], end_s=[1.0],
                bytes_used=[-1.0], network=["LTE"],
            )

    def test_validation_reports_offending_index(self):
        with pytest.raises(ValueError, match="record 2"):
            RecordBatch(
                user_id=[1, 2, 3], tower_id=[1, 2, 3],
                start_s=[0.0, 0.0, 5.0], end_s=[1.0, 1.0, 1.0],
                bytes_used=[1.0, 1.0, 1.0], network=["LTE", "3G", "LTE"],
            )

    def test_mismatched_column_lengths(self):
        with pytest.raises(ValueError, match="tower_id"):
            RecordBatch(
                user_id=[1, 2], tower_id=[1], start_s=[0.0, 0.0],
                end_s=[1.0, 1.0], bytes_used=[1.0, 1.0], network=["LTE", "LTE"],
            )

    def test_duration_and_total_bytes(self):
        batch = RecordBatch(
            user_id=[1, 2], tower_id=[1, 1], start_s=[0.0, 10.0],
            end_s=[5.0, 10.0], bytes_used=[100.0, 50.0], network=["LTE", "3G"],
        )
        assert batch.duration_s.tolist() == [5.0, 0.0]
        assert batch.total_bytes == 150.0

    def test_concat_and_take_and_filter(self):
        records = make_records(30)
        batch = RecordBatch.from_records(records)
        left, right = batch.take(np.arange(10)), batch.take(np.arange(10, 30))
        rejoined = RecordBatch.concat([left, right])
        assert rejoined.to_records() == records
        assert RecordBatch.concat([]).num_records == 0

        lte = batch.filter(batch.network == NETWORK_CODES["LTE"])
        assert all(record.network == "LTE" for record in lte.to_records())

    def test_take_delegates_boolean_masks_to_filter(self):
        batch = RecordBatch.from_records(make_records(6))
        mask = batch.network == NETWORK_CODES["LTE"]
        assert batch.take(mask).to_records() == batch.filter(mask).to_records()

    def test_filter_rejects_bad_mask_shape(self):
        batch = RecordBatch.from_records(make_records(4))
        with pytest.raises(ValueError, match="mask"):
            batch.filter(np.ones(3, dtype=bool))

    def test_iter_chunks_covers_batch_in_order(self):
        records = make_records(25)
        batch = RecordBatch.from_records(records)
        chunks = list(batch.iter_chunks(10))
        assert [len(chunk) for chunk in chunks] == [10, 10, 5]
        assert RecordBatch.concat(chunks).to_records() == records
        with pytest.raises(ValueError, match="chunk_size"):
            list(batch.iter_chunks(0))

    def test_sort_by_start(self):
        batch = RecordBatch.from_records(make_records(20)).sort_by_start()
        assert np.all(np.diff(batch.start_s) >= 0)

    def test_with_bytes_replaces_column(self):
        batch = RecordBatch.from_records(make_records(3))
        replaced = batch.with_bytes(np.array([1.0, 2.0, 3.0]))
        assert replaced.bytes_used.tolist() == [1.0, 2.0, 3.0]
        assert replaced.user_id.tolist() == batch.user_id.tolist()

    def test_batch_from_record_iter_chunks(self):
        records = make_records(23)
        batches = list(batch_from_record_iter(iter(records), 10))
        assert [len(batch) for batch in batches] == [10, 10, 3]
        assert RecordBatch.concat(batches).to_records() == records


class TestBatchReadersCsv:
    def test_roundtrip_via_batch_writer_and_reader(self, tmp_path):
        records = make_records(40)
        batch = RecordBatch.from_records(records)
        path = tmp_path / "trace.csv"
        assert write_records_csv(batch, path) == 40
        # batch writer output is readable by the scalar reader and vice versa
        assert list(read_records_csv(path)) == records
        assert read_record_batch_csv(path).to_records() == records

    def test_chunked_read_equals_whole_read(self, tmp_path):
        records = make_records(33)
        path = tmp_path / "trace.csv"
        write_records_csv(records, path)
        chunks = list(iter_record_batches_csv(path, chunk_size=10))
        assert [len(chunk) for chunk in chunks] == [10, 10, 10, 3]
        assert RecordBatch.concat(chunks).to_records() == records

    def test_rejects_bad_chunk_size(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_records_csv([], path)
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_record_batches_csv(path, chunk_size=0))

    def test_error_names_path_and_line_for_bad_value(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_records_csv(make_records(5), path)
        lines = path.read_text().splitlines()
        lines[3] = lines[3].replace(lines[3].split(",")[4], "not-a-number")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match=rf"{path}:4"):
            list(iter_record_batches_csv(path))

    def test_error_names_path_and_line_for_invalid_record(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "user_id,tower_id,start_s,end_s,bytes_used,network\n"
            "1,1,0.0,10.0,5.0,LTE\n"
            "1,1,20.0,10.0,5.0,LTE\n"
        )
        with pytest.raises(TraceFormatError, match=rf"{path}:3"):
            list(iter_record_batches_csv(path))

    def test_error_names_path_for_bad_header(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("wrong,header\n")
        with pytest.raises(TraceFormatError, match=str(path)):
            list(iter_record_batches_csv(path))

    def test_error_names_path_and_line_for_short_row(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "user_id,tower_id,start_s,end_s,bytes_used,network\n1,2,3\n"
        )
        with pytest.raises(TraceFormatError, match=rf"{path}:2"):
            list(iter_record_batches_csv(path))


class TestBatchReadersJsonl:
    def test_roundtrip_via_batch_writer_and_reader(self, tmp_path):
        records = make_records(40, seed=1)
        batch = RecordBatch.from_records(records)
        path = tmp_path / "trace.jsonl"
        assert write_records_jsonl(batch, path) == 40
        assert list(read_records_jsonl(path)) == records
        assert read_record_batch_jsonl(path).to_records() == records

    def test_chunked_read_equals_whole_read(self, tmp_path):
        records = make_records(21, seed=2)
        path = tmp_path / "trace.jsonl"
        write_records_jsonl(records, path)
        chunks = list(iter_record_batches_jsonl(path, chunk_size=8))
        assert [len(chunk) for chunk in chunks] == [8, 8, 5]
        assert RecordBatch.concat(chunks).to_records() == records

    def test_blank_lines_are_skipped(self, tmp_path):
        records = make_records(3, seed=3)
        path = tmp_path / "trace.jsonl"
        write_records_jsonl(records, path)
        content = path.read_text().replace("\n", "\n\n", 1)
        path.write_text(content)
        assert read_record_batch_jsonl(path).to_records() == records

    def test_error_names_path_and_line_for_bad_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"user_id": 1, "tower_id": 1, "start_s": 0, "end_s": 1, "bytes_used": 2}\nnot json\n')
        with pytest.raises(TraceFormatError, match=rf"{path}:2"):
            list(iter_record_batches_jsonl(path))

    def test_error_names_path_and_line_for_invalid_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"user_id": 1, "tower_id": 1, "start_s": 0, "end_s": 1, "bytes_used": 2}\n'
            '{"user_id": 1, "tower_id": 1, "start_s": 9, "end_s": 1, "bytes_used": 2}\n'
        )
        with pytest.raises(TraceFormatError, match=rf"{path}:2"):
            list(iter_record_batches_jsonl(path))

    def test_error_names_path_and_line_for_missing_field(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"user_id": 1}\n')
        with pytest.raises(TraceFormatError, match=rf"{path}:1"):
            list(iter_record_batches_jsonl(path))


class TestScalarReaderErrorsNamePath:
    """The record-at-a-time readers also name the file path, not just the line."""

    def test_csv_value_error_names_path(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "user_id,tower_id,start_s,end_s,bytes_used,network\n"
            "1,1,0.0,10.0,oops,LTE\n"
        )
        with pytest.raises(TraceFormatError, match=rf"{path}:2"):
            list(read_records_csv(path))

    def test_jsonl_value_error_names_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"user_id": 1, "tower_id": 1, "start_s": -4, "end_s": 1, "bytes_used": 2}\n')
        with pytest.raises(TraceFormatError, match=rf"{path}:1"):
            list(read_records_jsonl(path))
