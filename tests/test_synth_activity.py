"""Tests for repro.synth.activity — the ground-truth traffic shape templates."""

import numpy as np
import pytest

from repro.synth.activity import ActivityProfileLibrary, ActivityTemplate
from repro.synth.regions import RegionType
from repro.utils.timeutils import SLOTS_PER_DAY, SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def library() -> ActivityProfileLibrary:
    return ActivityProfileLibrary()


def hour_slot(hour: float) -> int:
    return int(hour * SLOTS_PER_DAY / 24.0)


class TestTemplateBasics:
    def test_weekly_length(self, library):
        for region_type in RegionType.pure_types():
            assert library.pure(region_type).weekly.shape == (SLOTS_PER_WEEK,)

    def test_strictly_positive(self, library):
        for region_type in RegionType.pure_types():
            assert np.all(library.pure(region_type).weekly > 0)

    def test_mean_is_one(self, library):
        for region_type in RegionType.pure_types():
            assert library.pure(region_type).weekly.mean() == pytest.approx(1.0)

    def test_pure_rejects_comprehensive(self, library):
        with pytest.raises(ValueError):
            library.pure(RegionType.COMPREHENSIVE)

    def test_template_is_cached(self, library):
        assert library.pure(RegionType.OFFICE) is library.pure(RegionType.OFFICE)

    def test_day_accessor(self, library):
        template = library.pure(RegionType.RESIDENT)
        assert template.day(0).shape == (SLOTS_PER_DAY,)
        with pytest.raises(ValueError):
            template.day(7)

    def test_tile_length_and_weekday_alignment(self, library):
        template = library.pure(RegionType.OFFICE)
        tiled = template.tile(10)
        assert tiled.shape == (10 * SLOTS_PER_DAY,)
        assert np.array_equal(tiled[:SLOTS_PER_DAY], template.day(0))
        assert np.array_equal(
            tiled[7 * SLOTS_PER_DAY : 8 * SLOTS_PER_DAY], template.day(0)
        )

    def test_tile_with_start_weekday(self, library):
        template = library.pure(RegionType.OFFICE)
        tiled = template.tile(2, start_weekday=5)
        assert np.array_equal(tiled[:SLOTS_PER_DAY], template.day(5))

    def test_invalid_template_rejected(self):
        with pytest.raises(ValueError):
            ActivityTemplate(region_type=None, weekly=np.ones(10))
        with pytest.raises(ValueError):
            ActivityTemplate(region_type=None, weekly=np.zeros(SLOTS_PER_WEEK))


class TestPaperShapes:
    """The templates must encode the qualitative shapes of the paper."""

    def test_resident_evening_peak(self, library):
        monday = library.pure(RegionType.RESIDENT).day(0)
        peak_hour = np.argmax(monday) * 24.0 / SLOTS_PER_DAY
        assert 19.0 <= peak_hour <= 23.0

    def test_resident_weekend_similar_to_weekday(self, library):
        template = library.pure(RegionType.RESIDENT)
        weekday_total = template.day(1).sum()
        weekend_total = template.day(6).sum()
        assert weekday_total / weekend_total == pytest.approx(1.0, abs=0.25)

    def test_transport_rush_hour_peaks(self, library):
        monday = library.pure(RegionType.TRANSPORT).day(0)
        morning = monday[hour_slot(7.0) : hour_slot(9.0)].max()
        evening = monday[hour_slot(17.0) : hour_slot(19.0)].max()
        midnight = monday[hour_slot(2.0) : hour_slot(4.0)].max()
        assert morning > 5 * midnight
        assert evening > 5 * midnight

    def test_transport_weekday_heavier_than_weekend(self, library):
        template = library.pure(RegionType.TRANSPORT)
        assert template.day(1).sum() > 1.2 * template.day(6).sum()

    def test_transport_has_largest_peak_valley_ratio(self, library):
        ratios = {}
        for region_type in RegionType.pure_types():
            day = library.pure(region_type).day(2)
            ratios[region_type] = day.max() / day.min()
        assert max(ratios, key=ratios.get) is RegionType.TRANSPORT

    def test_office_single_midday_peak_on_weekdays(self, library):
        monday = library.pure(RegionType.OFFICE).day(0)
        peak_hour = np.argmax(monday) * 24.0 / SLOTS_PER_DAY
        assert 9.0 <= peak_hour <= 14.0

    def test_office_weekday_heavier_than_weekend(self, library):
        template = library.pure(RegionType.OFFICE)
        assert template.day(2).sum() > 1.3 * template.day(5).sum()

    def test_entertainment_weekday_evening_peak(self, library):
        monday = library.pure(RegionType.ENTERTAINMENT).day(0)
        peak_hour = np.argmax(monday) * 24.0 / SLOTS_PER_DAY
        assert 16.0 <= peak_hour <= 21.0

    def test_entertainment_weekend_midday_peak(self, library):
        saturday = library.pure(RegionType.ENTERTAINMENT).day(5)
        peak_hour = np.argmax(saturday) * 24.0 / SLOTS_PER_DAY
        assert 11.0 <= peak_hour <= 14.0

    def test_all_templates_valley_in_early_morning(self, library):
        for region_type in RegionType.pure_types():
            day = library.pure(region_type).day(1)
            valley_hour = np.argmin(day) * 24.0 / SLOTS_PER_DAY
            assert 1.0 <= valley_hour <= 6.5


class TestMixtures:
    def test_mixture_is_convex_combination(self, library):
        weights = (0.5, 0.0, 0.5, 0.0)
        mixture = library.mixture(weights)
        manual = 0.5 * library.pure(RegionType.RESIDENT).weekly + 0.5 * library.pure(
            RegionType.OFFICE
        ).weekly
        manual = manual / manual.mean()
        assert np.allclose(mixture.weekly, manual)

    def test_mixture_weights_validated(self, library):
        with pytest.raises(ValueError):
            library.mixture((0.5, 0.5, 0.5, 0.5))

    def test_for_region_type_comprehensive_default(self, library):
        template = library.for_region_type(RegionType.COMPREHENSIVE)
        assert template.region_type is RegionType.COMPREHENSIVE
        assert template.weekly.mean() == pytest.approx(1.0)

    def test_for_region_type_pure_ignores_mixture(self, library):
        template = library.for_region_type(RegionType.OFFICE, mixture=(1.0, 0.0, 0.0, 0.0))
        assert np.array_equal(template.weekly, library.pure(RegionType.OFFICE).weekly)

    def test_all_pure_returns_four(self, library):
        assert set(library.all_pure()) == set(RegionType.pure_types())
