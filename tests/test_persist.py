"""Tests for repro.io — model bundles (save/load) and the query server."""

import json

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.model import TrafficPatternModel
from repro.io.persist import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    PersistError,
    config_from_manifest,
    config_to_manifest,
    load_model,
    read_manifest,
    save_model,
)
from repro.io.server import ModelServer
from repro.ingest.batch import RecordBatch
from repro.synth.scenario import ScenarioConfig, generate_scenario
from repro.utils.timeutils import SLOT_SECONDS, TimeWindow


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(
        ScenarioConfig(num_towers=50, num_users=80, num_days=7, seed=11)
    )


@pytest.fixture(scope="module")
def fitted_model(scenario):
    """A scalar-fit model with city labelling and a tuner curve."""
    model = TrafficPatternModel(ModelConfig(max_clusters=8))
    model.fit(scenario.traffic, city=scenario.city)
    return model


def _synthetic_day_batch(rng, window, num_towers, day, n=3000):
    starts = rng.uniform(day * 86_400.0, (day + 1) * 86_400.0, size=n)
    durations = rng.exponential(0.5 * SLOT_SECONDS, size=n)
    return RecordBatch(
        user_id=rng.integers(0, 400, size=n),
        tower_id=rng.integers(0, num_towers, size=n),
        start_s=starts,
        end_s=np.minimum(starts + durations, float(window.num_seconds)),
        bytes_used=rng.lognormal(9.0, 1.0, size=n),
        network=np.zeros(n, dtype=np.uint8),
    )


@pytest.fixture(scope="module")
def batch_fit_model():
    """A fit_batches model (no city, fixed cluster count)."""
    rng = np.random.default_rng(3)
    window = TimeWindow(num_days=7)
    batches = [_synthetic_day_batch(rng, window, 40, day) for day in range(7)]
    model = TrafficPatternModel(ModelConfig(num_clusters=4))
    model.fit_batches(batches, window, list(range(40)))
    return model


def _assert_results_equal(original, loaded):
    """Bit-for-bit equality of every array plus metadata of two results."""
    assert loaded.window == original.window
    assert np.array_equal(loaded.vectorized.tower_ids, original.vectorized.tower_ids)
    assert np.array_equal(loaded.vectorized.vectors, original.vectorized.vectors)
    assert np.array_equal(
        loaded.vectorized.raw.traffic, original.vectorized.raw.traffic
    )
    assert loaded.vectorized.method is original.vectorized.method
    assert np.array_equal(loaded.labels, original.labels)
    assert np.array_equal(
        loaded.clustering.dendrogram.merges, original.clustering.dendrogram.merges
    )
    assert (
        loaded.clustering.dendrogram.num_observations
        == original.clustering.dendrogram.num_observations
    )
    assert loaded.clustering.linkage is original.clustering.linkage
    assert loaded.clustering.threshold == original.clustering.threshold
    assert loaded.components == original.components
    assert np.array_equal(
        loaded.frequency_features.amplitudes, original.frequency_features.amplitudes
    )
    assert np.array_equal(
        loaded.frequency_features.phases, original.frequency_features.phases
    )
    if original.tuning_curve is None:
        assert loaded.tuning_curve is None
    else:
        assert np.array_equal(
            loaded.tuning_curve.num_clusters, original.tuning_curve.num_clusters
        )
        assert np.array_equal(loaded.tuning_curve.scores, original.tuning_curve.scores)
        assert np.array_equal(
            loaded.tuning_curve.thresholds, original.tuning_curve.thresholds
        )
        assert loaded.tuning_curve.best() == original.tuning_curve.best()
    if original.labeling is None:
        assert loaded.labeling is None
    else:
        assert loaded.labeling.as_dict() == original.labeling.as_dict()
        assert np.array_equal(loaded.labeling.scores, original.labeling.scores)
    if original.poi_profile is None:
        assert loaded.poi_profile is None
    else:
        assert np.array_equal(
            loaded.poi_profile.counts, original.poi_profile.counts
        )
        assert loaded.poi_profile.radius_km == original.poi_profile.radius_km
    if original.representatives is None:
        assert loaded.representatives is None
    else:
        assert np.array_equal(
            loaded.representatives.cluster_labels,
            original.representatives.cluster_labels,
        )
        assert np.array_equal(
            loaded.representatives.row_indices, original.representatives.row_indices
        )
        assert np.array_equal(
            loaded.representatives.tower_ids, original.representatives.tower_ids
        )
        assert np.array_equal(
            loaded.representatives.features, original.representatives.features
        )
    assert loaded.extras == original.extras


class TestRoundTrip:
    def test_scalar_fit_round_trip_bit_for_bit(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        assert (bundle / MANIFEST_NAME).is_file()
        assert (bundle / ARRAYS_NAME).is_file()
        loaded = TrafficPatternModel.load(bundle)
        _assert_results_equal(fitted_model.result, loaded.result)
        assert loaded.config == fitted_model.config

    def test_batch_fit_round_trip_bit_for_bit(self, batch_fit_model, tmp_path):
        bundle = batch_fit_model.save(tmp_path / "bundle")
        loaded = TrafficPatternModel.load(bundle)
        _assert_results_equal(batch_fit_model.result, loaded.result)
        assert loaded.config == batch_fit_model.config

    def test_loaded_model_answers_every_query_identically(self, fitted_model, tmp_path):
        loaded = TrafficPatternModel.load(fitted_model.save(tmp_path / "bundle"))
        for tower_id in fitted_model.result.tower_ids:
            original = fitted_model.decompose(int(tower_id))
            reloaded = loaded.decompose(int(tower_id))
            assert original.as_dict() == reloaded.as_dict()
            assert original.residual == reloaded.residual
            assert fitted_model.predict_region(int(tower_id)) is loaded.predict_region(
                int(tower_id)
            )
        assert (
            loaded.result.percentage_table() == fitted_model.result.percentage_table()
        )

    def test_save_load_functions_match_method_api(self, fitted_model, tmp_path):
        path = save_model(fitted_model.result, fitted_model.config, tmp_path / "b")
        loaded = load_model(path)
        _assert_results_equal(fitted_model.result, loaded.result)
        assert loaded.manifest["schema_version"] == SCHEMA_VERSION

    def test_config_round_trip(self):
        config = ModelConfig(
            num_clusters=6,
            cluster_backend="generic",
            poi_radius_km=0.5,
            decomposition_feature=(("amplitude", "day"), ("phase", "half_day")),
        )
        assert config_from_manifest(config_to_manifest(config)) == config

    def test_unserialisable_extras_fail_loudly(self, fitted_model, tmp_path):
        result = fitted_model.result
        polluted = dict(result.extras)
        polluted["handle"] = object()
        original = result.extras
        result.extras = polluted
        try:
            with pytest.raises(PersistError, match="JSON"):
                save_model(result, fitted_model.config, tmp_path / "bad")
        finally:
            result.extras = original


class TestFailureModes:
    def test_missing_bundle(self, tmp_path):
        with pytest.raises(PersistError, match="no such model bundle"):
            load_model(tmp_path / "nope")

    def test_directory_without_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(PersistError, match="missing manifest.json"):
            load_model(tmp_path / "empty")

    def test_corrupt_manifest(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        (bundle / MANIFEST_NAME).write_text("{ not json !")
        with pytest.raises(PersistError, match="corrupt manifest"):
            load_model(bundle)

    def test_wrong_format_marker(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        manifest["format"] = "something-else"
        (bundle / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="not a repro-traffic-model bundle"):
            read_manifest(bundle)

    def test_future_schema_version_rejected(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        manifest = json.loads((bundle / MANIFEST_NAME).read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        (bundle / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="newer than the supported version"):
            load_model(bundle)

    def test_missing_arrays_file(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        (bundle / ARRAYS_NAME).unlink()
        with pytest.raises(PersistError, match="missing arrays.npz"):
            load_model(bundle)

    def test_tampered_array_fails_integrity_check(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        with np.load(bundle / ARRAYS_NAME) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["clustering.labels"] = arrays["clustering.labels"].copy()
        arrays["clustering.labels"][0] += 1
        with (bundle / ARRAYS_NAME).open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(PersistError, match="integrity check"):
            load_model(bundle)

    def test_missing_array_key(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        with np.load(bundle / ARRAYS_NAME) as archive:
            arrays = {key: archive[key] for key in archive.files}
        del arrays["dendrogram.merges"]
        with (bundle / ARRAYS_NAME).open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(PersistError, match="dendrogram.merges"):
            load_model(bundle)

    def test_truncated_archive_is_corrupt(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        blob = (bundle / ARRAYS_NAME).read_bytes()
        (bundle / ARRAYS_NAME).write_bytes(blob[: len(blob) // 2])
        with pytest.raises(PersistError):
            load_model(bundle)

    def test_messages_are_path_qualified(self, tmp_path):
        missing = tmp_path / "absent"
        with pytest.raises(PersistError, match=str(missing)):
            load_model(missing)


class TestModelServer:
    @pytest.fixture(scope="class")
    def server(self, fitted_model, tmp_path_factory):
        bundle = fitted_model.save(tmp_path_factory.mktemp("srv") / "bundle")
        return ModelServer.from_artifact(bundle)

    def test_requires_fitted_model(self):
        with pytest.raises(RuntimeError, match="not been fitted"):
            ModelServer(TrafficPatternModel())

    def test_summaries_match_result(self, server, fitted_model):
        summaries = server.summaries()
        assert len(summaries) == fitted_model.result.num_clusters
        one = server.cluster_summary(0)
        assert one.cluster_label == 0
        with pytest.raises(KeyError):
            server.cluster_summary(99)

    def test_decompose_is_memoised(self, server):
        tower = server.tower_ids()[0]
        first = server.decompose(tower)
        second = server.decompose(tower)
        assert first is second
        stats = server.stats()
        assert stats["decompose_cache_hits"] >= 1
        assert stats["decompose_cache_size"] >= 1
        assert stats["queries"] >= 2

    def test_predict_region_and_pattern(self, server, fitted_model):
        tower = server.tower_ids()[3]
        assert server.predict_region(tower) is fitted_model.predict_region(tower)
        pattern = server.pattern_of(tower)
        assert pattern.tower_id == tower
        assert pattern.cluster == int(
            fitted_model.result.labels[fitted_model.result.vectorized.row_of(tower)]
        )
        row = pattern.as_row()
        assert row["tower_id"] == tower
        assert row["region"] == pattern.region.value
        assert row["total_bytes"] == pytest.approx(pattern.raw_series.sum())

    def test_invalidate_clears_cache(self, server):
        server.decompose(server.tower_ids()[0])
        server.invalidate()
        assert server.stats()["decompose_cache_size"] == 0


class TestMmapLoad:
    """``load_model(..., mmap=True)`` — file-backed arrays, identical values."""

    def test_mmap_round_trip_bit_for_bit(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        eager = load_model(bundle)
        mapped = load_model(bundle, mmap=True)
        _assert_results_equal(eager.result, mapped.result)
        assert mapped.manifest == eager.manifest

    def test_mmap_arrays_are_file_backed(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        mapped = load_model(bundle, mmap=True)
        vectors = mapped.result.vectorized.vectors
        # Dataclass coercion (np.asarray) may rewrap the memmap as a
        # zero-copy ndarray view; either way the buffer stays on disk.
        assert isinstance(vectors, np.memmap) or isinstance(vectors.base, np.memmap)

    def test_mmap_leaves_no_scratch_behind(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        load_model(bundle, mmap=True)
        leftovers = [
            p for p in bundle.parent.rglob("*") if ".repro-mmap-" in p.name
        ]
        assert leftovers == []

    def test_mmap_model_queries_match_eager(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        eager = TrafficPatternModel.load(bundle)
        mapped = TrafficPatternModel.load(bundle, mmap=True)
        assert np.array_equal(
            mapped.decompose_all().coefficients, eager.decompose_all().coefficients
        )
        tower = int(eager.result.tower_ids[0])
        assert mapped.predict_region(tower) is eager.predict_region(tower)

    def test_mmap_corrupt_bundle_still_fails_loudly(self, fitted_model, tmp_path):
        bundle = fitted_model.save(tmp_path / "bundle")
        (bundle / ARRAYS_NAME).write_bytes(b"not a zip archive")
        with pytest.raises(PersistError):
            load_model(bundle, mmap=True)
