"""Tests for the command-line interface (repro.cli)."""

import csv

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])

    def test_defaults(self):
        args = build_parser().parse_args(["fit", "--towers", "50"])
        assert args.towers == 50
        assert args.days == 28
        assert args.clusters is None
        assert args.cluster_backend == "auto"
        assert args.timings is False

    def test_cluster_backend_choices(self):
        args = build_parser().parse_args(["fit", "--cluster-backend", "nn_chain"])
        assert args.cluster_backend == "nn_chain"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "--cluster-backend", "bogus"])


class TestGenerate:
    def test_writes_trace_and_stations(self, tmp_path, capsys):
        exit_code = main(
            [
                "generate",
                "--towers", "10",
                "--users", "40",
                "--days", "2",
                "--seed", "3",
                "--output", str(tmp_path),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "trace.csv").exists()
        assert (tmp_path / "stations.csv").exists()
        output = capsys.readouterr().out
        assert "records" in output and "stations" in output
        with (tmp_path / "stations.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10


class TestFit:
    def test_chunk_size_requires_trace(self):
        with pytest.raises(SystemExit, match="--chunk-size"):
            main(["fit", "--towers", "10", "--chunk-size", "1000"])

    def test_fit_on_synthetic_scenario(self, capsys):
        exit_code = main(
            [
                "fit",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--clusters", "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "identified 5 traffic patterns" in output
        assert "office" in output and "transport" in output

    def test_fit_with_explicit_backend_and_timings(self, capsys):
        exit_code = main(
            [
                "fit",
                "--towers", "40",
                "--users", "80",
                "--days", "7",
                "--seed", "11",
                "--clusters", "4",
                "--cluster-backend", "generic",
                "--timings",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "pipeline stage timings:" in output
        for stage_name in ("vectorize", "cluster", "tune", "label", "spectral", "decompose"):
            assert stage_name in output

    def test_fit_with_tuner_reports_threshold(self, capsys):
        exit_code = main(
            [
                "fit",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--max-clusters", "8",
            ]
        )
        assert exit_code == 0
        assert "Davies-Bouldin minimised" in capsys.readouterr().out

    def test_fit_exports_assignments(self, tmp_path, capsys):
        assignments = tmp_path / "assignments.csv"
        exit_code = main(
            [
                "fit",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--clusters", "5",
                "--assignments", str(assignments),
            ]
        )
        assert exit_code == 0
        with assignments.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 60
        assert {"tower_id", "cluster", "region"} <= set(rows[0])

    def test_fit_on_generated_trace(self, tmp_path, capsys):
        assert (
            main(
                [
                    "generate",
                    "--towers", "12",
                    "--users", "40",
                    "--days", "7",
                    "--seed", "5",
                    "--output", str(tmp_path),
                ]
            )
            == 0
        )
        exit_code = main(
            [
                "fit",
                "--trace", str(tmp_path / "trace.csv"),
                "--stations", str(tmp_path / "stations.csv"),
                "--days", "7",
                "--clusters", "3",
            ]
        )
        assert exit_code == 0
        assert "identified 3 traffic patterns" in capsys.readouterr().out

    def test_trace_without_stations_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fit", "--trace", str(tmp_path / "missing.csv"), "--days", "7"])


class TestDecompose:
    def test_decompose_default_towers(self, capsys):
        exit_code = main(
            [
                "decompose",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--clusters", "5",
                "--count", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "residual" in output
        # Four primary components plus the tower and residual columns.
        header = output.strip().splitlines()[0]
        assert header.count("|") == 5

    def test_decompose_specific_tower(self, capsys):
        exit_code = main(
            [
                "decompose",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--clusters", "5",
                "--tower-ids", "0", "1",
            ]
        )
        assert exit_code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 + 2  # header + separator + two towers
