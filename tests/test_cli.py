"""Tests for the command-line interface (repro.cli)."""

import csv

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])

    def test_defaults(self):
        args = build_parser().parse_args(["fit", "--towers", "50"])
        assert args.towers == 50
        assert args.days == 28
        assert args.clusters is None
        assert args.cluster_backend == "auto"
        assert args.timings is False

    def test_cluster_backend_choices(self):
        args = build_parser().parse_args(["fit", "--cluster-backend", "nn_chain"])
        assert args.cluster_backend == "nn_chain"

    def test_unknown_cluster_backend_is_operational_error(self, capsys):
        # Unknown backend names fail as one-line exit-2 operational errors
        # (not argparse usage dumps), like --workers/--chunk-size.
        exit_code = main(["fit", "--towers", "10", "--cluster-backend", "bogus"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "--cluster-backend" in err and "bogus" in err
        assert "nn_chain_lowmem" in err

    @pytest.mark.parametrize("bad", ["0", "-5"])
    def test_nonpositive_cluster_tile_size_is_operational_error(self, bad, capsys):
        exit_code = main(["fit", "--towers", "10", "--cluster-tile-size", bad])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "--cluster-tile-size" in err and bad in err


class TestGenerate:
    def test_writes_trace_and_stations(self, tmp_path, capsys):
        exit_code = main(
            [
                "generate",
                "--towers", "10",
                "--users", "40",
                "--days", "2",
                "--seed", "3",
                "--output", str(tmp_path),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "trace.csv").exists()
        assert (tmp_path / "stations.csv").exists()
        output = capsys.readouterr().out
        assert "records" in output and "stations" in output
        with (tmp_path / "stations.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10


class TestFit:
    def test_chunk_size_requires_trace(self):
        with pytest.raises(SystemExit, match="--chunk-size"):
            main(["fit", "--towers", "10", "--chunk-size", "1000"])

    def test_fit_on_synthetic_scenario(self, capsys):
        exit_code = main(
            [
                "fit",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--clusters", "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "identified 5 traffic patterns" in output
        assert "office" in output and "transport" in output

    def test_fit_with_explicit_backend_and_timings(self, capsys):
        exit_code = main(
            [
                "fit",
                "--towers", "40",
                "--users", "80",
                "--days", "7",
                "--seed", "11",
                "--clusters", "4",
                "--cluster-backend", "generic",
                "--timings",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "pipeline stage timings:" in output
        for stage_name in ("vectorize", "cluster", "tune", "label", "spectral", "decompose"):
            assert stage_name in output

    def test_fit_with_tuner_reports_threshold(self, capsys):
        exit_code = main(
            [
                "fit",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--max-clusters", "8",
            ]
        )
        assert exit_code == 0
        assert "Davies-Bouldin minimised" in capsys.readouterr().out

    def test_fit_exports_assignments(self, tmp_path, capsys):
        assignments = tmp_path / "assignments.csv"
        exit_code = main(
            [
                "fit",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--clusters", "5",
                "--assignments", str(assignments),
            ]
        )
        assert exit_code == 0
        with assignments.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 60
        assert {"tower_id", "cluster", "region"} <= set(rows[0])

    def test_fit_on_generated_trace(self, tmp_path, capsys):
        assert (
            main(
                [
                    "generate",
                    "--towers", "12",
                    "--users", "40",
                    "--days", "7",
                    "--seed", "5",
                    "--output", str(tmp_path),
                ]
            )
            == 0
        )
        exit_code = main(
            [
                "fit",
                "--input", str(tmp_path / "trace.csv"),
                "--stations", str(tmp_path / "stations.csv"),
                "--days", "7",
                "--clusters", "3",
            ]
        )
        assert exit_code == 0
        assert "identified 3 traffic patterns" in capsys.readouterr().out

    def test_input_without_stations_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fit", "--input", str(tmp_path / "missing.csv"), "--days", "7"])


class TestDecompose:
    def test_decompose_default_towers(self, capsys):
        exit_code = main(
            [
                "decompose",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--clusters", "5",
                "--count", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "residual" in output
        # Four primary components plus the tower and residual columns.
        header = output.strip().splitlines()[0]
        assert header.count("|") == 5

    def test_decompose_specific_tower(self, capsys):
        exit_code = main(
            [
                "decompose",
                "--towers", "60",
                "--users", "100",
                "--days", "14",
                "--seed", "11",
                "--clusters", "5",
                "--tower-ids", "0", "1",
            ]
        )
        assert exit_code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 + 2  # header + separator + two towers


class TestPersistCLI:
    @pytest.fixture()
    def saved_bundle(self, tmp_path):
        """A small labelled model fitted on a synthetic scenario and saved."""
        bundle = tmp_path / "bundle"
        exit_code = main(
            [
                "fit",
                "--towers", "40",
                "--users", "80",
                "--days", "7",
                "--seed", "11",
                "--clusters", "5",
                "--save", str(bundle),
            ]
        )
        assert exit_code == 0
        return bundle

    def test_fit_save_writes_bundle(self, saved_bundle, capsys):
        assert (saved_bundle / "manifest.json").is_file()
        assert (saved_bundle / "arrays.npz").is_file()

    def test_query_summary(self, saved_bundle, capsys):
        capsys.readouterr()
        assert main(["query", "--model", str(saved_bundle)]) == 0
        output = capsys.readouterr().out
        assert "5 traffic patterns" in output
        assert "cluster" in output and "region" in output

    def test_query_region_decompose_pattern_and_json(self, saved_bundle, tmp_path, capsys):
        capsys.readouterr()
        json_path = tmp_path / "queries.json"
        exit_code = main(
            [
                "query",
                "--model", str(saved_bundle),
                "--region", "0", "1",
                "--decompose", "0",
                "--pattern", "0",
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "residual" in output
        assert "peak slot" in output
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        assert {"regions", "decompositions", "patterns"} <= set(payload)
        assert payload["regions"][0]["tower_id"] == 0

    def test_query_decompose_all(self, saved_bundle, tmp_path, capsys):
        capsys.readouterr()
        json_path = tmp_path / "all.json"
        exit_code = main(
            [
                "query",
                "--model", str(saved_bundle),
                "--decompose-all",
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "convex decomposition of all 40 towers:" in output
        assert "residual" in output
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        rows = payload["decompositions_all"]
        assert len(rows) == 40
        assert {"tower_id", "coefficients", "residual"} <= set(rows[0])
        assert sum(rows[0]["coefficients"].values()) == pytest.approx(1.0)

    def test_decompose_from_saved_model(self, saved_bundle, capsys):
        capsys.readouterr()
        exit_code = main(
            ["decompose", "--model", str(saved_bundle), "--tower-ids", "0", "1"]
        )
        assert exit_code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 + 2  # header + separator + two towers

    def test_update_folds_new_trace_and_saves(self, saved_bundle, tmp_path, capsys):
        # Generate a compatible raw trace to fold in (towers overlap).
        trace_dir = tmp_path / "newday"
        assert main(
            [
                "generate",
                "--towers", "40",
                "--users", "30",
                "--days", "7",
                "--seed", "12",
                "--output", str(trace_dir),
            ]
        ) == 0
        capsys.readouterr()
        updated = tmp_path / "updated-bundle"
        exit_code = main(
            [
                "update",
                "--model", str(saved_bundle),
                "--input", str(trace_dir / "trace.csv"),
                "--save", str(updated),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "folded" in output and "stages re-run" in output
        assert (updated / "manifest.json").is_file()
        assert main(["query", "--model", str(updated)]) == 0

    def test_update_chunked_matches_whole(self, saved_bundle, tmp_path, capsys):
        # A duplicate-free trace so per-chunk cleaning equals global cleaning
        # (cross-chunk duplicates are a documented fit/update caveat).
        import numpy as np

        from repro.ingest.batch import RecordBatch
        from repro.ingest.loader import write_records_csv
        from repro.io.persist import load_model

        rng = np.random.default_rng(21)
        n = 12_000
        starts = rng.uniform(0, 7 * 86_400.0 - 600.0, size=n)
        clean = RecordBatch(
            user_id=np.arange(n),  # unique users: no duplicates or conflicts
            tower_id=rng.integers(0, 40, size=n),
            start_s=starts,
            end_s=starts + rng.exponential(300.0, size=n),
            bytes_used=rng.lognormal(9.0, 1.0, size=n),
            network=np.zeros(n, dtype=np.uint8),
        )
        trace = tmp_path / "newday.csv"
        write_records_csv(clean, trace)
        capsys.readouterr()
        for save_name, chunk_args in (
            ("whole", []),
            ("chunked", ["--chunk-size", "5000"]),
        ):
            exit_code = main(
                [
                    "update",
                    "--model", str(saved_bundle),
                    "--input", str(trace),
                    "--save", str(tmp_path / save_name),
                    *chunk_args,
                ]
            )
            assert exit_code == 0
        assert "folded" in capsys.readouterr().out
        whole = load_model(tmp_path / "whole").result
        chunked = load_model(tmp_path / "chunked").result
        assert np.array_equal(
            whole.vectorized.raw.traffic, chunked.vectorized.raw.traffic
        )
        assert np.array_equal(whole.labels, chunked.labels)


class TestCLIErrorPaths:
    def test_missing_trace_exits_2_with_one_liner(self, tmp_path, capsys):
        missing = tmp_path / "absent.csv"
        stations = tmp_path / "stations.csv"
        stations.write_text("tower_id,address\n0,somewhere\n")
        exit_code = main(
            ["fit", "--input", str(missing), "--stations", str(stations), "--days", "7"]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert str(missing) in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_stations_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "trace.csv"
        trace.write_text("user_id,tower_id,start_s,end_s,bytes_used,network\n")
        exit_code = main(
            ["fit", "--input", str(trace), "--stations", str(tmp_path / "nope.csv")]
        )
        assert exit_code == 2
        assert "stations file not found" in capsys.readouterr().err

    def test_query_missing_bundle_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "no-bundle"
        assert main(["query", "--model", str(missing)]) == 2
        err = capsys.readouterr().err
        assert str(missing) in err and "error" in err

    def test_query_corrupt_manifest_exits_2(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        bundle.mkdir()
        (bundle / "manifest.json").write_text("{ definitely not json")
        (bundle / "arrays.npz").write_bytes(b"")
        assert main(["query", "--model", str(bundle)]) == 2
        err = capsys.readouterr().err
        assert "corrupt manifest" in err
        assert len(err.strip().splitlines()) == 1

    def test_query_future_schema_exits_2(self, tmp_path, capsys):
        import json as json_module

        from repro.io.persist import SCHEMA_VERSION

        bundle = tmp_path / "bundle"
        bundle.mkdir()
        (bundle / "manifest.json").write_text(
            json_module.dumps(
                {"format": "repro-traffic-model", "schema_version": SCHEMA_VERSION + 7}
            )
        )
        assert main(["query", "--model", str(bundle)]) == 2
        assert "newer than the supported version" in capsys.readouterr().err

    def test_update_missing_input_exits_2(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(
            [
                "fit",
                "--towers", "20",
                "--users", "40",
                "--days", "3",
                "--seed", "2",
                "--clusters", "3",
                "--save", str(bundle),
            ]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["update", "--model", str(bundle), "--input", str(tmp_path / "gone.csv")]
        )
        assert exit_code == 2
        assert "input trace not found" in capsys.readouterr().err

    def test_query_unlabelled_model_region_exits_2(self, tmp_path, capsys):
        # A model fitted from a bare trace has no geographic labelling.
        trace_dir = tmp_path / "gen"
        assert main(
            [
                "generate",
                "--towers", "15",
                "--users", "40",
                "--days", "2",
                "--seed", "4",
                "--output", str(trace_dir),
            ]
        ) == 0
        bundle = tmp_path / "bundle"
        assert main(
            [
                "fit",
                "--input", str(trace_dir / "trace.csv"),
                "--stations", str(trace_dir / "stations.csv"),
                "--days", "2",
                "--clusters", "3",
                "--save", str(bundle),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["query", "--model", str(bundle), "--region", "0"]) == 2
        err = capsys.readouterr().err
        assert "without geographic labelling" in err
        assert len(err.strip().splitlines()) == 1

    def test_update_fully_out_of_window_exits_2(self, tmp_path, capsys):
        import numpy as np

        from repro.ingest.batch import RecordBatch
        from repro.ingest.loader import write_records_csv

        bundle = tmp_path / "bundle"
        assert main(
            [
                "fit",
                "--towers", "20",
                "--users", "40",
                "--days", "2",
                "--seed", "2",
                "--clusters", "3",
                "--save", str(bundle),
            ]
        ) == 0
        # Every record starts after the model's 2-day window ends.
        n = 50
        starts = np.linspace(3 * 86_400.0, 4 * 86_400.0, n)
        late = RecordBatch(
            user_id=np.arange(n),
            tower_id=np.zeros(n, dtype=np.int64),
            start_s=starts,
            end_s=starts + 60.0,
            bytes_used=np.full(n, 1000.0),
            network=np.zeros(n, dtype=np.uint8),
        )
        trace = tmp_path / "late.csv"
        write_records_csv(late, trace)
        capsys.readouterr()
        exit_code = main(["update", "--model", str(bundle), "--input", str(trace)])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "window" in err and str(trace) in err
        assert len(err.strip().splitlines()) == 1


class TestParallelCLI:
    """Validation and end-to-end paths of --workers (shard-parallel ingest)."""

    def _generate(self, tmp_path, *, towers=20, days=3, seed=9):
        trace_dir = tmp_path / "gen"
        assert main(
            [
                "generate",
                "--towers", str(towers),
                "--users", "50",
                "--days", str(days),
                "--seed", str(seed),
                "--output", str(trace_dir),
            ]
        ) == 0
        return trace_dir

    def test_chunk_size_zero_exits_2(self, capsys):
        exit_code = main(["fit", "--towers", "10", "--chunk-size", "0"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "--chunk-size must be a positive record count" in err
        assert len(err.strip().splitlines()) == 1

    def test_chunk_size_negative_exits_2(self, capsys):
        assert main(["fit", "--towers", "10", "--chunk-size", "-5"]) == 2
        assert "--chunk-size must be a positive" in capsys.readouterr().err

    def test_workers_below_minus_one_exits_2(self, capsys):
        exit_code = main(["fit", "--towers", "10", "--workers", "-3"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "--workers must be >= -1" in err
        assert len(err.strip().splitlines()) == 1

    def test_fit_workers_without_streaming_input_exits_2(self, capsys):
        # Not silently serial: --workers without --input/--chunk-size errors.
        exit_code = main(["fit", "--towers", "10", "--workers", "2"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "--workers needs a streaming input" in err
        assert len(err.strip().splitlines()) == 1

    def test_fit_workers_with_trace_but_no_chunk_size_exits_2(self, tmp_path, capsys):
        trace_dir = self._generate(tmp_path)
        capsys.readouterr()
        exit_code = main(
            [
                "fit",
                "--input", str(trace_dir / "trace.csv"),
                "--stations", str(trace_dir / "stations.csv"),
                "--workers", "2",
            ]
        )
        assert exit_code == 2
        assert "--workers needs a streaming input" in capsys.readouterr().err

    def test_update_workers_without_chunk_size_exits_2(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(
            [
                "fit",
                "--towers", "15",
                "--users", "40",
                "--days", "2",
                "--seed", "2",
                "--clusters", "3",
                "--save", str(bundle),
            ]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            [
                "update",
                "--model", str(bundle),
                "--input", str(bundle / "whatever.csv"),
                "--workers", "2",
            ]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "--workers needs --chunk-size" in err
        assert len(err.strip().splitlines()) == 1

    def test_parallel_fit_matches_serial_chunked_fit(self, tmp_path, capsys):
        import numpy as np

        from repro.io.persist import load_model

        trace_dir = self._generate(tmp_path)
        bundles = {}
        for name, extra in (
            ("serial", []),
            ("parallel", ["--workers", "2"]),
        ):
            bundle = tmp_path / name
            assert main(
                [
                    "fit",
                    "--input", str(trace_dir / "trace.csv"),
                    "--stations", str(trace_dir / "stations.csv"),
                    "--days", "3",
                    "--clusters", "3",
                    "--chunk-size", "4000",
                    "--save", str(bundle),
                    *extra,
                ]
            ) == 0
            bundles[name] = load_model(bundle).result
        capsys.readouterr()
        serial = bundles["serial"].vectorized.raw.traffic
        parallel = bundles["parallel"].vectorized.raw.traffic
        assert np.allclose(parallel, serial, rtol=1e-9, atol=0.0)
        # The parallel bundle serves queries like any other.
        assert main(["query", "--model", str(tmp_path / "parallel")]) == 0
        assert "traffic patterns" in capsys.readouterr().out

    def test_parallel_update_matches_serial_chunked_update(self, tmp_path, capsys):
        import numpy as np

        from repro.io.persist import load_model

        trace_dir = self._generate(tmp_path, seed=13)
        base = tmp_path / "base"
        assert main(
            [
                "fit",
                "--input", str(trace_dir / "trace.csv"),
                "--stations", str(trace_dir / "stations.csv"),
                "--days", "3",
                "--clusters", "3",
                "--save", str(base),
            ]
        ) == 0
        fresh_dir = self._generate(tmp_path / "fresh", seed=14)
        for name, extra in (
            ("serial-upd", []),
            ("parallel-upd", ["--workers", "2"]),
        ):
            assert main(
                [
                    "update",
                    "--model", str(base),
                    "--input", str(fresh_dir / "trace.csv"),
                    "--chunk-size", "4000",
                    "--save", str(tmp_path / name),
                    *extra,
                ]
            ) == 0
        capsys.readouterr()
        serial = load_model(tmp_path / "serial-upd").result.vectorized.raw.traffic
        parallel = load_model(tmp_path / "parallel-upd").result.vectorized.raw.traffic
        assert np.allclose(parallel, serial, rtol=1e-9, atol=0.0)


class TestTraceCLI:
    """The --trace telemetry flag and the stats subcommand."""

    STAGES = ("vectorize", "cluster", "tune", "label", "spectral", "decompose")

    def _generate(self, trace_dir, *, towers=20, days=3, seed=9):
        assert main(
            [
                "generate",
                "--towers", str(towers),
                "--users", "50",
                "--days", str(days),
                "--seed", str(seed),
                "--output", str(trace_dir),
            ]
        ) == 0
        return trace_dir

    def test_traced_fit_prints_span_tree(self, capsys):
        assert main(["fit", "--towers", "15", "--days", "7", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        for stage in self.STAGES:
            assert stage in out

    def test_traced_fit_writes_schema_valid_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.json"
        assert main(
            ["fit", "--towers", "15", "--days", "7", "--trace", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-trace"
        assert payload["schema_version"] == 1
        (root,) = payload["spans"]
        assert root["name"] == "fit"
        assert [child["name"] for child in root["children"]] == list(self.STAGES)
        for span in root["children"]:
            assert span["wall_s"] >= 0.0
            assert span["status"] in ("ok", "error")
        assert "metrics" in payload

    def test_traced_parallel_fit_records_worker_spans(self, tmp_path, capsys):
        import json

        trace_dir = self._generate(tmp_path / "gen")
        target = tmp_path / "trace.json"
        bundle = tmp_path / "bundle"
        assert main(
            [
                "fit",
                "--input", str(trace_dir / "trace.csv"),
                "--stations", str(trace_dir / "stations.csv"),
                "--days", "3",
                "--clusters", "3",
                "--chunk-size", "4000",
                "--workers", "2",
                "--save", str(bundle),
                "--trace", str(target),
            ]
        ) == 0
        payload = json.loads(target.read_text())
        (root,) = payload["spans"]
        names = [child["name"] for child in root["children"]]
        assert names == ["ingest", *self.STAGES]
        ingest = root["children"][0]
        workers = [child["name"] for child in ingest["children"]]
        assert workers == ["worker-0", "worker-1"]
        total = sum(
            child["counters"]["records_seen"] for child in ingest["children"]
        )
        assert total == ingest["counters"]["records_seen"] > 0
        assert payload["metrics"]["counters"]["ingest.records_seen"] == total
        # The sidecar next to the bundle carries the same trace.
        sidecar = json.loads((bundle / "trace.json").read_text())
        assert sidecar["schema"] == "repro-trace"
        assert [span["name"] for span in sidecar["spans"]] == ["fit"]

    def test_tracing_leaves_saved_bundle_identical(self, tmp_path, capsys):
        import json

        plain, traced = tmp_path / "plain", tmp_path / "traced"
        for bundle, extra in ((plain, []), (traced, ["--trace"])):
            assert main(
                [
                    "fit",
                    "--towers", "15",
                    "--days", "7",
                    "--seed", "4",
                    "--clusters", "3",
                    "--save", str(bundle),
                    *extra,
                ]
            ) == 0
        # Every persisted array is bit-for-bit identical with and without
        # tracing, and the manifest differs only in the wall-clock stage
        # timings (which vary between *any* two runs).
        assert (traced / "arrays.npz").read_bytes() == (plain / "arrays.npz").read_bytes()
        manifests = []
        for bundle in (plain, traced):
            manifest = json.loads((bundle / "manifest.json").read_text())
            manifest["extras"].pop("stage_timings")
            manifests.append(manifest)
        assert manifests[0] == manifests[1]
        assert (traced / "trace.json").is_file()
        assert not (plain / "trace.json").exists()

    def test_trace_into_missing_directory_exits_2(self, capsys):
        exit_code = main(
            ["fit", "--towers", "10", "--trace", "/nonexistent/dir/trace.json"]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "cannot write trace" in err
        assert len(err.strip().splitlines()) == 1

    def test_trace_target_directory_exits_2(self, tmp_path, capsys):
        exit_code = main(["fit", "--towers", "10", "--trace", str(tmp_path)])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "is a directory" in err
        assert len(err.strip().splitlines()) == 1

    @pytest.fixture()
    def saved_bundle(self, tmp_path):
        bundle = tmp_path / "bundle"
        assert main(
            [
                "fit",
                "--towers", "30",
                "--users", "60",
                "--days", "7",
                "--seed", "11",
                "--clusters", "4",
                "--save", str(bundle),
            ]
        ) == 0
        return bundle

    def test_traced_query_prints_query_spans(self, saved_bundle, capsys):
        capsys.readouterr()
        assert main(
            ["query", "--model", str(saved_bundle), "--decompose-all", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "query:decompose_all" in out

    def test_traced_update_writes_sidecar(self, saved_bundle, tmp_path, capsys):
        import json

        trace_dir = self._generate(tmp_path / "fresh", towers=30, days=7, seed=11)
        updated = tmp_path / "updated"
        assert main(
            [
                "update",
                "--model", str(saved_bundle),
                "--input", str(trace_dir / "trace.csv"),
                "--save", str(updated),
                "--trace",
            ]
        ) == 0
        sidecar = json.loads((updated / "trace.json").read_text())
        assert [span["name"] for span in sidecar["spans"]] == ["update"]

    def test_stats_without_sidecar(self, saved_bundle, capsys):
        capsys.readouterr()
        assert main(["stats", "--model", str(saved_bundle)]) == 0
        out = capsys.readouterr().out
        assert "repro-traffic-model" in out
        assert "stage timings" in out
        assert "trace sidecar:    none" in out

    def test_stats_renders_sidecar(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        assert main(
            [
                "fit",
                "--towers", "15",
                "--days", "7",
                "--clusters", "3",
                "--save", str(bundle),
                "--trace",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["stats", "--model", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "trace (from trace.json sidecar):" in out
        for stage in self.STAGES:
            assert stage in out

    def test_stats_missing_bundle_exits_2(self, tmp_path, capsys):
        exit_code = main(["stats", "--model", str(tmp_path / "nope")])
        assert exit_code == 2
        assert "no such model bundle" in capsys.readouterr().err


class TestServeCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "bundle"])
        assert args.host == "127.0.0.1"
        assert args.port == 8350
        assert args.serve_workers == 4
        assert args.batch_window_ms == 2.0
        assert args.max_batch == 64
        assert args.cache_size == 4096
        assert args.no_mmap is False

    def test_serve_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    @pytest.mark.parametrize(
        "flags",
        [
            ["--port", "70000"],
            ["--port", "-1"],
            ["--workers", "0"],
            ["--batch-window-ms", "-1"],
            ["--max-batch", "0"],
            ["--cache-size", "-1"],
        ],
    )
    def test_invalid_options_exit_2(self, flags, capsys):
        exit_code = main(["serve", "--model", "bundle", *flags])
        assert exit_code == 2
        assert "repro-traffic: error:" in capsys.readouterr().err

    def test_missing_bundle_exits_2(self, tmp_path, capsys):
        exit_code = main(["serve", "--model", str(tmp_path / "nope"), "--port", "0"])
        assert exit_code == 2
        assert "no such model bundle" in capsys.readouterr().err


class TestStatsURL:
    @pytest.fixture(scope="class")
    def saved_bundle(self, tmp_path_factory):
        bundle = tmp_path_factory.mktemp("serve-cli") / "bundle"
        assert main(
            [
                "fit",
                "--towers", "20",
                "--days", "7",
                "--clusters", "3",
                "--save", str(bundle),
            ]
        ) == 0
        return bundle

    def test_requires_exactly_one_source(self, capsys):
        assert main(["stats"]) == 2
        assert "exactly one of" in capsys.readouterr().err
        assert main(["stats", "--model", "b", "--url", "http://x"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_unreachable_url_exits_2(self, capsys):
        exit_code = main(["stats", "--url", "http://127.0.0.1:1"])
        assert exit_code == 2
        assert "cannot fetch serving stats" in capsys.readouterr().err

    def test_renders_live_snapshot(self, saved_bundle, capsys):
        import json as json_module
        import urllib.request

        from repro.io.service import ModelService, start_service

        capsys.readouterr()
        with start_service(ModelService(saved_bundle)) as handle:
            tower = json_module.loads(
                urllib.request.urlopen(handle.url + "/summary", timeout=30).read()
            )
            assert tower["num_towers"] == 20
            assert main(["stats", "--url", handle.url]) == 0
        out = capsys.readouterr().out
        assert f"live serving stats from {handle.url}" in out
        assert "model fingerprint:" in out
        assert "result cache:" in out
        assert "micro-batching:" in out
        assert str(saved_bundle) in out
