"""Tests for repro.core (config, model, results) — the end-to-end pipeline."""

import numpy as np
import pytest

from repro.cluster.linkage import Linkage
from repro.core.config import ModelConfig
from repro.core.model import TrafficPatternModel
from repro.core.results import ClusterSummary, ModelResult
from repro.geo.labeling import label_accuracy
from repro.synth.regions import RegionType
from repro.vectorize.normalize import NormalizationMethod


class TestModelConfig:
    def test_defaults_match_paper(self):
        config = ModelConfig()
        assert config.normalization is NormalizationMethod.ZSCORE
        assert config.linkage is Linkage.AVERAGE
        assert config.validity_index == "davies_bouldin"
        assert config.poi_radius_km == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(min_clusters=1)
        with pytest.raises(ValueError):
            ModelConfig(min_clusters=6, max_clusters=4)
        with pytest.raises(ValueError):
            ModelConfig(num_clusters=0)
        with pytest.raises(ValueError):
            ModelConfig(poi_radius_km=0.0)
        with pytest.raises(ValueError):
            ModelConfig(decomposition_feature=())


class TestFittedModel:
    def test_five_patterns_identified(self, fitted_model):
        assert fitted_model.result.num_clusters == 5

    def test_labels_cover_all_towers(self, fitted_model, scenario):
        result = fitted_model.result
        assert result.labels.shape == (scenario.traffic.num_towers,)
        assert result.tower_ids.shape == (scenario.traffic.num_towers,)

    def test_all_regions_assigned(self, fitted_model):
        result = fitted_model.result
        regions = {result.region_of_cluster(c) for c in range(result.num_clusters)}
        assert regions == set(RegionType.ordered())

    def test_clusters_recover_ground_truth(self, fitted_model, scenario):
        result = fitted_model.result
        accuracy = label_accuracy(
            result.labeling, result.labels, scenario.ground_truth_labels()
        )
        assert accuracy > 0.9

    def test_percentage_table_structure(self, fitted_model):
        rows = fitted_model.result.percentage_table()
        assert len(rows) == 5
        assert sum(row["percentage"] for row in rows) == pytest.approx(100.0, abs=0.1)
        assert {"cluster", "region", "percentage"} <= set(rows[0])

    def test_office_is_largest_cluster(self, fitted_model):
        result = fitted_model.result
        office = result.cluster_of_region(RegionType.OFFICE)
        sizes = result.clustering.cluster_sizes()
        assert np.argmax(sizes) == office

    def test_summaries(self, fitted_model, scenario):
        summaries = fitted_model.result.summaries()
        assert len(summaries) == 5
        assert all(isinstance(s, ClusterSummary) for s in summaries)
        assert sum(s.num_towers for s in summaries) == scenario.traffic.num_towers
        assert all(s.centroid_profile.shape == (scenario.window.num_slots,) for s in summaries)

    def test_cluster_aggregate_and_centroid(self, fitted_model):
        result = fitted_model.result
        aggregate = result.cluster_aggregate(0)
        centroid = result.cluster_centroid(0)
        assert aggregate.shape == centroid.shape
        assert aggregate.sum() > 0

    def test_tuning_curve_recorded(self, fitted_model):
        curve = fitted_model.result.tuning_curve
        assert curve is not None
        assert curve.best()[0] == 5
        assert curve.index_name == "davies_bouldin"

    def test_representatives_are_pure_clusters(self, fitted_model):
        result = fitted_model.result
        reps = result.representatives
        assert reps is not None
        assert reps.num_clusters == 4
        comp_cluster = result.cluster_of_region(RegionType.COMPREHENSIVE)
        assert comp_cluster not in reps.cluster_labels.tolist()

    def test_predict_region(self, fitted_model, scenario):
        truth = scenario.ground_truth_labels()
        hits = 0
        for row in range(0, scenario.traffic.num_towers, 7):
            tower_id = int(scenario.traffic.tower_ids[row])
            predicted = fitted_model.predict_region(tower_id)
            hits += predicted.index == truth[row]
        assert hits / len(range(0, scenario.traffic.num_towers, 7)) > 0.85

    def test_decompose_comprehensive_tower(self, fitted_model):
        result = fitted_model.result
        comp_cluster = result.cluster_of_region(RegionType.COMPREHENSIVE)
        members = result.cluster_members(comp_cluster)
        tower_id = int(result.tower_ids[members[0]])
        decomposition = fitted_model.decompose(tower_id)
        assert decomposition.coefficients.sum() == pytest.approx(1.0)
        assert np.all(decomposition.coefficients >= -1e-9)

    def test_decompose_pure_tower_dominated_by_own_cluster(self, fitted_model):
        result = fitted_model.result
        reps = result.representatives
        # The representative itself must decompose to ~100% of its own component.
        for label, tower_id in zip(reps.cluster_labels, reps.tower_ids):
            decomposition = fitted_model.decompose(int(tower_id))
            assert decomposition.dominant_component() == int(label)
            assert decomposition.coefficient_of(int(label)) > 0.95

    def test_time_domain_mixture(self, fitted_model):
        result = fitted_model.result
        comp_cluster = result.cluster_of_region(RegionType.COMPREHENSIVE)
        members = result.cluster_members(comp_cluster)
        tower_id = int(result.tower_ids[members[1]])
        mixture = fitted_model.decompose_in_time_domain(tower_id)
        assert mixture.combined.shape == (result.window.num_slots,)
        assert mixture.approximation_error() < 0.8

    def test_result_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TrafficPatternModel().result


class TestModelVariants:
    def test_fixed_num_clusters(self, scenario):
        model = TrafficPatternModel(ModelConfig(num_clusters=4))
        result = model.fit(scenario.traffic, city=scenario.city)
        assert result.num_clusters == 4
        assert result.tuning_curve is None

    def test_fit_without_city_skips_labelling(self, scenario):
        model = TrafficPatternModel(ModelConfig(num_clusters=5))
        result = model.fit(scenario.traffic)
        assert result.labeling is None
        assert result.poi_profile is None
        assert result.region_of_cluster(0) is None
        with pytest.raises(KeyError):
            result.cluster_of_region(RegionType.OFFICE)
        with pytest.raises(RuntimeError):
            model.predict_region(int(result.tower_ids[0]))
        # Representatives still exist (all clusters are used as components).
        assert result.representatives is not None

    def test_minmax_normalisation_also_recovers_patterns(self, scenario):
        model = TrafficPatternModel(
            ModelConfig(normalization=NormalizationMethod.MINMAX, num_clusters=5)
        )
        result = model.fit(scenario.traffic, city=scenario.city)
        accuracy = label_accuracy(
            result.labeling, result.labels, scenario.ground_truth_labels()
        )
        assert accuracy > 0.8
