"""Tests for repro.core.pipeline and repro.core.stages — the staged engine."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.model import TrafficPatternModel
from repro.core.pipeline import (
    Pipeline,
    PipelineContext,
    PipelineError,
    StageTiming,
    timings_as_dict,
)
from repro.core.stages import (
    ClusterStage,
    DecomposeStage,
    LabelStage,
    SpectralStage,
    TuneStage,
    VectorizeStage,
    default_stages,
)

STAGE_NAMES = ["vectorize", "cluster", "tune", "label", "spectral", "decompose"]


class RecordingStage:
    """Toy stage appending its name to a shared log artifact."""

    def __init__(self, name, fails=False):
        self.name = name
        self.fails = fails

    def run(self, context):
        if self.fails:
            raise RuntimeError(f"stage {self.name} exploded")
        log = context.get("log", [])
        context.set("log", [*log, self.name], producer=self.name)


class ConditionalStage(RecordingStage):
    def should_run(self, context):
        return bool(context.get("enable_conditional", False))


class TestPipelineContext:
    def test_set_get_require_and_provenance(self):
        context = PipelineContext(config=ModelConfig())
        context.set("answer", 42, producer="oracle")
        assert context.get("answer") == 42
        assert context.require("answer", int) == 42
        assert context.producer_of("answer") == "oracle"
        assert "answer" in context
        assert context.keys() == ["answer"]

    def test_require_missing_names_available_artifacts(self):
        context = PipelineContext(config=ModelConfig())
        context.set("present", 1)
        with pytest.raises(PipelineError, match="present"):
            context.require("absent")

    def test_require_type_mismatch(self):
        context = PipelineContext(config=ModelConfig())
        context.set("answer", "not-an-int")
        with pytest.raises(TypeError):
            context.require("answer", int)

    def test_require_none_skips_type_check(self):
        context = PipelineContext(config=ModelConfig())
        context.set("maybe", None)
        assert context.require("maybe", int) is None


class TestPipelineRunner:
    def make_context(self, **artifacts):
        context = PipelineContext(config=ModelConfig())
        for key, value in artifacts.items():
            context.set(key, value)
        return context

    def test_runs_stages_in_order_and_times_them(self):
        pipeline = Pipeline([RecordingStage("a"), RecordingStage("b")])
        context = pipeline.run(self.make_context())
        assert context.get("log") == ["a", "b"]
        assert [t.name for t in context.timings] == ["a", "b"]
        assert all(isinstance(t, StageTiming) and t.seconds >= 0.0 for t in context.timings)
        assert not any(t.skipped for t in context.timings)

    def test_skip_hook(self):
        pipeline = Pipeline([RecordingStage("a"), RecordingStage("b")], skip={"a"})
        context = pipeline.run(self.make_context())
        assert context.get("log") == ["b"]
        skipped = {t.name for t in context.timings if t.skipped}
        assert skipped == {"a"}

    def test_without_returns_new_pipeline(self):
        pipeline = Pipeline([RecordingStage("a"), RecordingStage("b")])
        reduced = pipeline.without("b")
        assert pipeline.run(self.make_context()).get("log") == ["a", "b"]
        assert reduced.run(self.make_context()).get("log") == ["a"]

    def test_override_hook(self):
        pipeline = Pipeline([RecordingStage("a"), RecordingStage("b", fails=True)])
        patched = pipeline.with_override("b", RecordingStage("b-fixed"))
        context = patched.run(self.make_context())
        assert context.get("log") == ["a", "b-fixed"]
        assert [t.name for t in context.timings] == ["a", "b-fixed"]

    def test_should_run_predicate(self):
        pipeline = Pipeline([ConditionalStage("c")])
        off = pipeline.run(self.make_context())
        assert off.get("log") is None
        assert off.timings[0].skipped
        on = pipeline.run(self.make_context(enable_conditional=True))
        assert on.get("log") == ["c"]

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline([RecordingStage("a"), RecordingStage("a")])

    def test_unknown_skip_and_override_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline([RecordingStage("a")], skip={"zzz"})
        with pytest.raises(PipelineError):
            Pipeline([RecordingStage("a")], overrides={"zzz": RecordingStage("b")})

    def test_timings_as_dict(self):
        timings = [StageTiming("a", 0.25), StageTiming("b", 0.0, skipped=True)]
        assert timings_as_dict(timings) == {"a": 0.25, "b": 0.0}


class TestDefaultStages:
    def test_names_and_order(self):
        assert [stage.name for stage in default_stages()] == STAGE_NAMES

    def test_types(self):
        stages = default_stages()
        assert isinstance(stages[0], VectorizeStage)
        assert isinstance(stages[1], ClusterStage)
        assert isinstance(stages[2], TuneStage)
        assert isinstance(stages[3], LabelStage)
        assert isinstance(stages[4], SpectralStage)
        assert isinstance(stages[5], DecomposeStage)

    def test_fresh_instances_each_call(self):
        assert default_stages()[0] is not default_stages()[0]


class TestModelAsPipelineFacade:
    def test_stage_timings_recorded_in_extras(self, fitted_model):
        timings = fitted_model.result.extras["stage_timings"]
        assert list(timings) == STAGE_NAMES
        assert all(seconds >= 0.0 for seconds in timings.values())
        # The fitted_model fixture supplies a city, so labelling really ran.
        assert timings["label"] > 0.0

    def test_label_stage_skipped_without_city(self, scenario):
        model = TrafficPatternModel(ModelConfig(num_clusters=5))
        result = model.fit(scenario.traffic)
        assert result.labeling is None
        assert result.extras["stage_timings"]["label"] == 0.0
        assert result.extras["stages_skipped"] == ["label"]

    def test_no_stages_skipped_with_city(self, fitted_model):
        assert fitted_model.result.extras["stages_skipped"] == []

    def test_build_pipeline_is_the_default_assembly(self):
        pipeline = TrafficPatternModel().build_pipeline()
        assert pipeline.stage_names == STAGE_NAMES

    def test_custom_pipeline_subclass_can_skip_stages(self, scenario):
        class NoLabelModel(TrafficPatternModel):
            def build_pipeline(self):
                return super().build_pipeline().without("label")

        model = NoLabelModel(ModelConfig(num_clusters=5))
        result = model.fit(scenario.traffic, city=scenario.city)
        assert result.labeling is None
        assert result.poi_profile is None
        # All clusters become components when no labelling exists.
        assert result.representatives is not None

    def test_backend_choice_preserves_fit_structure(self, scenario):
        generic = TrafficPatternModel(
            ModelConfig(max_clusters=8, cluster_backend="generic")
        ).fit(scenario.traffic, city=scenario.city)
        chain = TrafficPatternModel(
            ModelConfig(max_clusters=8, cluster_backend="nn_chain")
        ).fit(scenario.traffic, city=scenario.city)
        assert generic.num_clusters == chain.num_clusters
        # Same partition, label-for-label (labels are renumbered
        # deterministically by lowest member index).
        assert np.array_equal(generic.labels, chain.labels)

    def test_invalid_backend_rejected_by_config(self):
        with pytest.raises(ValueError):
            ModelConfig(cluster_backend="bogus")


class TestEmptyLabelGuards:
    def test_percentages_and_sizes_raise_on_empty_labels(self):
        from repro.cluster.hierarchical import ClusteringResult, Dendrogram
        from repro.cluster.linkage import Linkage

        result = ClusteringResult(
            labels=np.array([], dtype=int),
            dendrogram=Dendrogram(merges=np.empty((0, 4)), num_observations=1),
            linkage=Linkage.AVERAGE,
        )
        with pytest.raises(ValueError):
            result.percentages()
        with pytest.raises(ValueError):
            result.cluster_sizes()


class FingerprintedStage(RecordingStage):
    """Toy stage whose fingerprint is the context's 'knob' artifact."""

    def __init__(self, name):
        super().__init__(name)
        self.run_count = 0

    def fingerprint(self, context):
        knob = context.get("knob")
        return None if knob is None else f"digest-{knob}"

    def run(self, context):
        self.run_count += 1
        context.set("product", f"{self.name}-of-{context.get('knob')}", producer=self.name)


class TestResumableRuns:
    def make_context(self, **artifacts):
        context = PipelineContext(config=ModelConfig())
        for key, value in artifacts.items():
            context.set(key, value)
        return context

    def test_fingerprints_recorded(self):
        stage = FingerprintedStage("s")
        context = self.make_context(knob=1)
        Pipeline([stage]).run(context)
        assert context.fingerprints == {"s": "digest-1"}
        assert stage.run_count == 1

    def test_matching_cache_republishes_outputs_without_running(self):
        from repro.core.pipeline import StageCache

        stage = FingerprintedStage("s")
        context = self.make_context(knob=1)
        context.reuse = {"s": StageCache("digest-1", {"product": "cached-product"})}
        Pipeline([stage]).run(context)
        assert stage.run_count == 0
        assert context.get("product") == "cached-product"
        assert context.producer_of("product") == "s"
        timing = context.timings[0]
        assert timing.reused and not timing.skipped
        assert context.fingerprints == {"s": "digest-1"}

    def test_stale_cache_reruns_the_stage(self):
        from repro.core.pipeline import StageCache

        stage = FingerprintedStage("s")
        context = self.make_context(knob=2)
        context.reuse = {"s": StageCache("digest-1", {"product": "cached-product"})}
        Pipeline([stage]).run(context)
        assert stage.run_count == 1
        assert context.get("product") == "s-of-2"
        assert not context.timings[0].reused

    def test_no_fingerprint_means_no_reuse(self):
        from repro.core.pipeline import StageCache

        stage = FingerprintedStage("s")
        context = self.make_context()  # no knob -> fingerprint None
        context.reuse = {"s": StageCache("digest-1", {"product": "cached-product"})}
        Pipeline([stage]).run(context)
        assert stage.run_count == 1
        assert "s" not in context.fingerprints

    def test_skip_wins_over_reuse(self):
        from repro.core.pipeline import StageCache

        stage = FingerprintedStage("s")
        context = self.make_context(knob=1)
        context.reuse = {"s": StageCache("digest-1", {"product": "cached-product"})}
        Pipeline([stage], skip={"s"}).run(context)
        assert stage.run_count == 0
        assert context.get("product") is None
        assert context.timings[0].skipped and not context.timings[0].reused
