"""Tests for repro.ingest.density, repro.ingest.geocode and repro.ingest.preprocess."""

import numpy as np
import pytest

from repro.ingest.density import compute_density_map
from repro.ingest.geocode import geocode_stations
from repro.ingest.preprocess import preprocess_trace
from repro.ingest.records import BaseStationInfo, TrafficRecord
from repro.synth.geocoder import SyntheticGeocoder
from repro.utils.geometry import GridSpec


class TestDensityMap:
    def test_total_traffic_conserved(self):
        lats = np.array([31.1, 31.2, 31.3])
        lons = np.array([121.4, 121.5, 121.6])
        traffic = np.array([10.0, 20.0, 30.0])
        density = compute_density_map(lats, lons, traffic, num_rows=5, num_cols=5)
        cell_area = density.grid.cell_area_km2()
        assert density.density.sum() * cell_area == pytest.approx(60.0)
        assert density.total_traffic == 60.0

    def test_peak_density_at_heaviest_tower(self):
        lats = np.array([31.1, 31.3])
        lons = np.array([121.4, 121.6])
        traffic = np.array([1.0, 100.0])
        density = compute_density_map(lats, lons, traffic, num_rows=4, num_cols=4)
        row, col = density.hottest_cell()
        expected_row, expected_col = density.grid.cell_of(31.3, 121.6)
        assert (row, col) == (expected_row, expected_col)

    def test_normalized_in_unit_range(self):
        density = compute_density_map(
            np.array([31.1, 31.2]), np.array([121.4, 121.5]), np.array([5.0, 10.0])
        )
        normalized = density.normalized()
        assert normalized.max() == pytest.approx(1.0)
        assert normalized.min() >= 0.0

    def test_explicit_grid_used(self):
        grid = GridSpec(31.0, 31.5, 121.0, 122.0, 10, 10)
        density = compute_density_map(
            np.array([31.2]), np.array([121.5]), np.array([7.0]), grid=grid
        )
        assert density.grid is grid

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_density_map(np.array([31.0]), np.array([121.0, 121.1]), np.array([1.0]))

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            compute_density_map(np.array([31.0]), np.array([121.0]), np.array([-1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_density_map(np.array([]), np.array([]), np.array([]))

    def test_nonzero_fraction(self):
        density = compute_density_map(
            np.array([31.1]), np.array([121.4]), np.array([5.0]), num_rows=10, num_cols=10
        )
        assert density.nonzero_fraction() == pytest.approx(0.01)


class TestGeocodeStations:
    def test_fills_missing_coordinates(self, scenario):
        towers = scenario.city.towers[:20]
        geocoder = SyntheticGeocoder.from_towers(towers)
        stations = [BaseStationInfo(t.tower_id, t.address) for t in towers]
        resolved, report = geocode_stations(stations, geocoder)
        assert report.num_resolved == len(towers)
        assert report.num_failed == 0
        assert all(station.is_geocoded for station in resolved)

    def test_unknown_addresses_reported_not_dropped(self, scenario):
        towers = scenario.city.towers[:5]
        geocoder = SyntheticGeocoder.from_towers(towers)
        stations = [BaseStationInfo(t.tower_id, t.address) for t in towers]
        stations.append(BaseStationInfo(tower_id=999, address="Unknown Road 1"))
        resolved, report = geocode_stations(stations, geocoder)
        assert len(resolved) == 6
        assert report.num_failed == 1
        assert report.failed_addresses == ("Unknown Road 1",)
        assert report.success_fraction == pytest.approx(5 / 6)

    def test_already_geocoded_pass_through(self):
        stations = [BaseStationInfo(tower_id=1, address="x", lat=31.0, lon=121.0)]
        geocoder = SyntheticGeocoder({})
        resolved, report = geocode_stations(stations, geocoder)
        assert resolved[0].lat == 31.0
        assert report.num_resolved == 1


class TestPreprocess:
    def test_end_to_end_on_session_scenario(self, session_scenario):
        towers = session_scenario.city.towers
        stations = [BaseStationInfo(t.tower_id, t.address) for t in towers]
        geocoder = SyntheticGeocoder.from_towers(towers)
        result = preprocess_trace(session_scenario.records, stations, geocoder)
        report = result.report
        # Everything the corruption step added must be cleaned away.
        corruption = session_scenario.corruption_report
        assert report.dedup.num_exact_duplicates_removed >= corruption.num_duplicates_added * 0.95
        assert report.dedup.num_conflict_groups > 0
        assert report.num_clean_records <= corruption.num_input_records
        assert report.geocoding.num_failed == 0
        assert result.density is not None
        assert result.density.total_traffic > 0

    def test_volume_close_to_clean_trace(self, session_scenario):
        towers = session_scenario.city.towers
        stations = [BaseStationInfo(t.tower_id, t.address) for t in towers]
        geocoder = SyntheticGeocoder.from_towers(towers)
        result = preprocess_trace(session_scenario.records, stations, geocoder)
        cleaned_volume = sum(r.bytes_used for r in result.records)
        corrupted_volume = sum(r.bytes_used for r in session_scenario.records)
        # Cleaning must remove the duplicated volume: cleaned < corrupted.
        assert cleaned_volume < corrupted_volume

    def test_density_skipped_when_not_requested(self, session_scenario):
        towers = session_scenario.city.towers
        stations = [BaseStationInfo(t.tower_id, t.address) for t in towers]
        geocoder = SyntheticGeocoder.from_towers(towers)
        result = preprocess_trace(
            session_scenario.records, stations, geocoder, compute_density=False
        )
        assert result.density is None

    def test_without_geocoder_uses_existing_coordinates(self, session_scenario):
        towers = session_scenario.city.towers
        stations = [
            BaseStationInfo(t.tower_id, t.address, lat=t.lat, lon=t.lon) for t in towers
        ]
        result = preprocess_trace(session_scenario.records[:1000], stations, None)
        assert result.report.geocoding.num_failed == 0
        assert result.density is not None

    def test_station_by_id(self, session_scenario):
        towers = session_scenario.city.towers
        stations = [BaseStationInfo(t.tower_id, t.address) for t in towers]
        result = preprocess_trace(session_scenario.records[:100], stations, None, compute_density=False)
        lookup = result.station_by_id()
        assert lookup[towers[0].tower_id].address == towers[0].address
