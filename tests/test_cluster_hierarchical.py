"""Tests for repro.cluster.hierarchical (against scipy and on synthetic blobs)."""

import numpy as np
import pytest
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage

from repro.cluster.hierarchical import (
    AgglomerativeClustering,
    ClusteringResult,
    Dendrogram,
    cut_by_distance,
    cut_by_num_clusters,
)
from repro.cluster.linkage import Linkage


def make_blobs(rng, centers, points_per_blob=15, spread=0.2):
    data = []
    labels = []
    for index, center in enumerate(centers):
        data.append(rng.normal(loc=center, scale=spread, size=(points_per_blob, len(center))))
        labels.extend([index] * points_per_blob)
    return np.vstack(data), np.array(labels)


def labels_match(a, b):
    """True when two labelings describe the same partition."""
    a = np.asarray(a)
    b = np.asarray(b)
    mapping = {}
    for x, y in zip(a, b):
        if x in mapping and mapping[x] != y:
            return False
        mapping[x] = y
    return len(set(mapping.values())) == len(mapping)


class TestAgainstScipy:
    @pytest.mark.parametrize(
        "our_linkage,scipy_method",
        [
            (Linkage.AVERAGE, "average"),
            (Linkage.SINGLE, "single"),
            (Linkage.COMPLETE, "complete"),
            (Linkage.WARD, "ward"),
        ],
    )
    def test_merge_distances_match(self, rng, our_linkage, scipy_method):
        vectors = rng.normal(size=(25, 5))
        ours = AgglomerativeClustering(linkage=our_linkage).fit(vectors)
        theirs = scipy_linkage(vectors, method=scipy_method)
        assert np.allclose(np.sort(ours.merge_distances), np.sort(theirs[:, 2]), atol=1e-8)

    @pytest.mark.parametrize(
        "our_linkage,scipy_method",
        [(Linkage.AVERAGE, "average"), (Linkage.COMPLETE, "complete")],
    )
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_cut_partitions_match(self, rng, our_linkage, scipy_method, k):
        vectors = rng.normal(size=(30, 4))
        ours = AgglomerativeClustering(linkage=our_linkage).fit(vectors)
        our_labels = ours.labels_at_num_clusters(k)
        their_labels = fcluster(scipy_linkage(vectors, method=scipy_method), k, criterion="maxclust")
        assert labels_match(our_labels, their_labels)


class TestBlobs:
    def test_recovers_well_separated_blobs(self, rng):
        vectors, truth = make_blobs(rng, [(0, 0), (8, 8), (-8, 8)])
        result = AgglomerativeClustering().fit_predict(vectors, num_clusters=3)
        assert labels_match(result.labels, truth)

    def test_distance_threshold_cut(self, rng):
        vectors, truth = make_blobs(rng, [(0, 0), (10, 10)])
        dendrogram = AgglomerativeClustering().fit(vectors)
        # A threshold between the blob diameter and the blob separation
        # recovers exactly two clusters.
        labels = dendrogram.labels_at_distance(5.0)
        assert np.unique(labels).size == 2
        assert labels_match(labels, truth)

    def test_threshold_extremes(self, rng):
        vectors, _ = make_blobs(rng, [(0, 0), (10, 10)], points_per_blob=5)
        dendrogram = AgglomerativeClustering().fit(vectors)
        assert np.unique(dendrogram.labels_at_distance(1e9)).size == 1
        assert np.unique(dendrogram.labels_at_distance(0.0)).size == vectors.shape[0]


class TestDendrogram:
    def test_merge_matrix_shape_and_sizes(self, rng):
        vectors = rng.normal(size=(12, 3))
        dendrogram = AgglomerativeClustering().fit(vectors)
        assert dendrogram.merges.shape == (11, 4)
        assert dendrogram.merges[-1, 3] == 12  # last merge contains everything

    def test_single_observation(self):
        dendrogram = AgglomerativeClustering().fit(np.ones((1, 3)))
        assert dendrogram.num_observations == 1
        assert dendrogram.labels_at_num_clusters(1).tolist() == [0]

    def test_labels_at_invalid_k(self, rng):
        dendrogram = AgglomerativeClustering().fit(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            dendrogram.labels_at_num_clusters(0)
        with pytest.raises(ValueError):
            dendrogram.labels_at_num_clusters(6)

    def test_labels_are_contiguous_from_zero(self, rng):
        dendrogram = AgglomerativeClustering().fit(rng.normal(size=(20, 3)))
        labels = dendrogram.labels_at_num_clusters(4)
        assert set(labels.tolist()) == {0, 1, 2, 3}

    def test_functional_wrappers(self, rng):
        vectors = rng.normal(size=(10, 2))
        dendrogram = AgglomerativeClustering().fit(vectors)
        assert np.array_equal(
            cut_by_num_clusters(dendrogram, 3), dendrogram.labels_at_num_clusters(3)
        )
        assert np.array_equal(
            cut_by_distance(dendrogram, 1.0), dendrogram.labels_at_distance(1.0)
        )

    def test_invalid_merge_shape_rejected(self):
        with pytest.raises(ValueError):
            Dendrogram(merges=np.zeros((3, 4)), num_observations=3)


class TestClusteringResult:
    def test_sizes_and_percentages(self, rng):
        vectors, _ = make_blobs(rng, [(0, 0), (9, 9)], points_per_blob=10)
        result = AgglomerativeClustering().fit_predict(vectors, num_clusters=2)
        assert isinstance(result, ClusteringResult)
        assert result.num_clusters == 2
        assert result.cluster_sizes().sum() == 20
        assert result.percentages().sum() == pytest.approx(100.0)
        assert result.members_of(0).size + result.members_of(1).size == 20

    def test_fit_predict_argument_validation(self, rng):
        vectors = rng.normal(size=(6, 2))
        clusterer = AgglomerativeClustering()
        with pytest.raises(ValueError):
            clusterer.fit_predict(vectors)
        with pytest.raises(ValueError):
            clusterer.fit_predict(vectors, num_clusters=2, distance_threshold=1.0)

    def test_precomputed_distances(self, rng):
        vectors = rng.normal(size=(12, 3))
        from repro.cluster.distance import euclidean_distance_matrix

        distances = euclidean_distance_matrix(vectors)
        direct = AgglomerativeClustering().fit(vectors)
        precomputed = AgglomerativeClustering().fit(
            np.empty((0, 0)), precomputed_distances=distances
        )
        assert np.allclose(direct.merge_distances, precomputed.merge_distances)

    def test_precomputed_distances_must_be_square(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering().fit(
                np.empty((0, 0)), precomputed_distances=np.ones((3, 4))
            )
