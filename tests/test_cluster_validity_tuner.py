"""Tests for repro.cluster.validity and repro.cluster.tuner."""

import numpy as np
import pytest

from repro.cluster.hierarchical import AgglomerativeClustering
from repro.cluster.tuner import MetricTuner, TuningCurve
from repro.cluster.validity import (
    calinski_harabasz_index,
    centroid_distance_cdf,
    cluster_centroids,
    davies_bouldin_index,
    silhouette_score,
    within_cluster_distances,
)


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(17)
    centers = [(0, 0), (10, 0), (0, 10), (10, 10)]
    data = np.vstack(
        [rng.normal(loc=c, scale=0.4, size=(20, 2)) for c in centers]
    )
    labels = np.repeat(np.arange(4), 20)
    return data, labels


class TestCentroidsAndScatter:
    def test_centroids_close_to_true_centers(self, blobs):
        data, labels = blobs
        centroids = cluster_centroids(data, labels)
        assert centroids.shape == (4, 2)
        assert np.allclose(centroids[0], [0, 0], atol=0.5)
        assert np.allclose(centroids[3], [10, 10], atol=0.5)

    def test_within_cluster_distances_small_for_tight_blobs(self, blobs):
        data, labels = blobs
        scatter = within_cluster_distances(data, labels)
        assert np.all(scatter < 1.5)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            cluster_centroids(np.ones(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            cluster_centroids(np.ones((5, 2)), np.zeros(4, dtype=int))


class TestDaviesBouldin:
    def test_good_clustering_has_low_dbi(self, blobs):
        data, labels = blobs
        assert davies_bouldin_index(data, labels) < 0.3

    def test_random_labels_have_higher_dbi(self, blobs):
        data, labels = blobs
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(labels)
        assert davies_bouldin_index(data, shuffled) > davies_bouldin_index(data, labels)

    def test_correct_k_minimises_dbi(self, blobs):
        data, _ = blobs
        dendrogram = AgglomerativeClustering().fit(data)
        scores = {
            k: davies_bouldin_index(data, dendrogram.labels_at_num_clusters(k))
            for k in range(2, 8)
        }
        assert min(scores, key=scores.get) == 4

    def test_single_cluster_rejected(self, blobs):
        data, _ = blobs
        with pytest.raises(ValueError):
            davies_bouldin_index(data, np.zeros(data.shape[0], dtype=int))

    def test_matches_manual_computation_on_tiny_example(self):
        data = np.array([[0.0, 0.0], [0.0, 2.0], [10.0, 0.0], [10.0, 2.0]])
        labels = np.array([0, 0, 1, 1])
        # S_0 = S_1 = 1, M_01 = 10 → DBI = (1+1)/10 = 0.2
        assert davies_bouldin_index(data, labels) == pytest.approx(0.2)


class TestSilhouetteAndCH:
    def test_silhouette_high_for_good_clustering(self, blobs):
        data, labels = blobs
        assert silhouette_score(data, labels) > 0.7

    def test_silhouette_lower_for_random(self, blobs):
        data, labels = blobs
        rng = np.random.default_rng(1)
        assert silhouette_score(data, rng.permutation(labels)) < 0.2

    def test_silhouette_precomputed_matches(self, blobs):
        from repro.cluster.distance import euclidean_distance_matrix

        data, labels = blobs
        distances = euclidean_distance_matrix(data)
        assert silhouette_score(data, labels) == pytest.approx(
            silhouette_score(data, labels, precomputed_distances=distances)
        )

    def test_calinski_harabasz_prefers_correct_k(self, blobs):
        data, _ = blobs
        dendrogram = AgglomerativeClustering().fit(data)
        scores = {
            k: calinski_harabasz_index(data, dendrogram.labels_at_num_clusters(k))
            for k in range(2, 8)
        }
        assert max(scores, key=scores.get) == 4

    def test_ch_requires_more_points_than_clusters(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            calinski_harabasz_index(data, np.array([0, 1]))

    def test_centroid_distance_cdf_monotone(self, blobs):
        data, labels = blobs
        curves = centroid_distance_cdf(data, labels, num_points=50)
        assert set(curves) == {0, 1, 2, 3}
        for grid, cdf in curves.values():
            assert grid.shape == cdf.shape == (50,)
            assert np.all(np.diff(cdf) >= -1e-12)
            assert cdf[-1] == pytest.approx(1.0)


class TestMetricTuner:
    def test_selects_true_number_of_blobs(self, blobs):
        data, truth = blobs
        dendrogram = AgglomerativeClustering().fit(data)
        tuner = MetricTuner(max_clusters=8)
        labels, curve = tuner.select(data, dendrogram)
        assert isinstance(curve, TuningCurve)
        assert curve.best()[0] == 4
        assert np.unique(labels).size == 4

    def test_threshold_reproduces_selected_cut(self, blobs):
        data, _ = blobs
        dendrogram = AgglomerativeClustering().fit(data)
        labels, curve = MetricTuner(max_clusters=8).select(data, dendrogram)
        _, _, threshold = curve.best()
        assert np.unique(dendrogram.labels_at_distance(threshold)).size == 4

    def test_silhouette_index_also_finds_four(self, blobs):
        data, _ = blobs
        dendrogram = AgglomerativeClustering().fit(data)
        _, curve = MetricTuner(index="silhouette", max_clusters=8).select(data, dendrogram)
        assert curve.best()[0] == 4
        assert not curve.lower_is_better

    def test_curve_rows(self, blobs):
        data, _ = blobs
        dendrogram = AgglomerativeClustering().fit(data)
        curve = MetricTuner(max_clusters=6).evaluate(data, dendrogram)
        rows = curve.as_rows()
        assert len(rows) == 5
        assert {"num_clusters", "score", "threshold"} <= set(rows[0])

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            MetricTuner(index="nonsense")
        with pytest.raises(ValueError):
            MetricTuner(min_clusters=1)
        with pytest.raises(ValueError):
            MetricTuner(min_clusters=5, max_clusters=3)

    def test_not_enough_observations(self):
        data = np.random.default_rng(0).normal(size=(3, 2))
        dendrogram = AgglomerativeClustering().fit(data)
        with pytest.raises(ValueError):
            MetricTuner(min_clusters=5, max_clusters=8).evaluate(data, dendrogram)
