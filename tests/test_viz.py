"""Tests for the viz package (ASCII plots, tables, CSV export, figure builders)."""

import csv

import numpy as np
import pytest

from repro.synth.regions import RegionType
from repro.viz.ascii import ascii_heatmap, ascii_line_plot, sparkline
from repro.viz.export import export_rows_csv, export_series_csv
from repro.viz.figures import coordinate_strip, daily_profiles, region_strip
from repro.viz.tables import format_table, render_matrix


class TestAscii:
    def test_sparkline_length(self):
        assert len(sparkline(np.arange(10))) == 10

    def test_sparkline_constant(self):
        assert sparkline(np.ones(5)) == "▁▁▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline(np.array([])) == ""

    def test_line_plot_contains_extremes(self):
        text = ascii_line_plot(np.sin(np.linspace(0, 6, 200)), width=40, height=8, title="wave")
        assert "wave" in text
        assert "max" in text and "min" in text
        assert "*" in text

    def test_line_plot_empty(self):
        assert ascii_line_plot(np.array([])) == "(empty series)"

    def test_line_plot_invalid_size(self):
        with pytest.raises(ValueError):
            ascii_line_plot(np.ones(5), width=0)

    def test_heatmap_row_count(self):
        text = ascii_heatmap(np.random.default_rng(0).random((4, 20)))
        assert len(text.splitlines()) == 4

    def test_heatmap_requires_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones(5))


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1.0], ["b", 123.456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "123.5" in text  # default 4 significant digits

    def test_format_table_wrong_row_length(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_render_matrix_with_labels(self):
        text = render_matrix(
            np.array([[1.0, 2.0], [3.0, 4.0]]),
            row_labels=["r0", "r1"],
            column_labels=["c0", "c1"],
        )
        assert "r0" in text and "c1" in text and "4.0000" in text

    def test_render_matrix_label_mismatch(self):
        with pytest.raises(ValueError):
            render_matrix(np.ones((2, 2)), row_labels=["only one"])


class TestExport:
    def test_export_rows_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = tmp_path / "rows.csv"
        assert export_rows_csv(rows, path) == 2
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0]["a"] == "1" and loaded[1]["b"] == "y"

    def test_export_rows_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert export_rows_csv([], path) == 0
        assert path.read_text() == ""

    def test_export_series(self, tmp_path):
        path = tmp_path / "series.csv"
        count = export_series_csv({"x": np.arange(3), "y": np.arange(3) * 2}, path)
        assert count == 3
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "index,x,y"
        assert lines[-1].startswith("2,")

    def test_export_series_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv({"x": np.arange(3), "y": np.arange(4)}, tmp_path / "bad.csv")


class TestFigureBuilders:
    def test_daily_profiles_normalised(self, scenario):
        profiles = daily_profiles(scenario.traffic, np.arange(5), day=2)
        assert profiles.shape == (5, 144)
        assert np.allclose(profiles.max(axis=1), 1.0)

    def test_coordinate_strip(self, scenario):
        lats, _ = scenario.city.tower_coordinates()
        strip = coordinate_strip(scenario.traffic, lats, num_towers=20, rng=1)
        assert strip.num_towers == 20
        assert np.all(np.diff(strip.sort_values) >= 0)
        assert strip.peak_hour_spread() >= 0

    def test_coordinate_strip_mismatch(self, scenario):
        with pytest.raises(ValueError):
            coordinate_strip(scenario.traffic, np.zeros(3), rng=0)

    def test_region_strip_only_contains_requested_region(self, scenario):
        lats, _ = scenario.city.tower_coordinates()
        truth = scenario.ground_truth_labels()
        strip = region_strip(
            scenario.traffic, lats, truth, RegionType.OFFICE, num_towers=10, rng=2
        )
        office_ids = set(
            scenario.traffic.tower_ids[truth == RegionType.OFFICE.index].tolist()
        )
        assert set(strip.tower_ids.tolist()) <= office_ids

    def test_region_strip_peak_spread_smaller_than_random(self, scenario):
        # Fig. 4 vs Fig. 5: towers of a single region are far more regular.
        lats, _ = scenario.city.tower_coordinates()
        truth = scenario.ground_truth_labels()
        random_strip = coordinate_strip(scenario.traffic, lats, num_towers=30, rng=3)
        office_strip = region_strip(
            scenario.traffic, lats, truth, RegionType.OFFICE, num_towers=30, rng=3
        )
        assert office_strip.peak_hour_spread() <= random_strip.peak_hour_spread()

    def test_region_strip_missing_region(self, scenario):
        lats, _ = scenario.city.tower_coordinates()
        truth = np.zeros(scenario.traffic.num_towers, dtype=int)
        with pytest.raises(ValueError):
            region_strip(scenario.traffic, lats, truth, RegionType.TRANSPORT, rng=0)
