"""Tests for the spectral package (DFT, components, features, variance)."""

import numpy as np
import pytest

from repro.spectral.components import (
    PrincipalComponents,
    principal_components_for_window,
    reconstruct_from_components,
    reconstruction_energy_loss,
    reconstruction_energy_loss_curve,
)
from repro.spectral.dft import (
    amplitude_spectrum,
    dft,
    dominant_frequencies,
    inverse_dft,
    phase_spectrum,
)
from repro.spectral.features import cluster_feature_statistics, extract_frequency_features
from repro.spectral.variance import (
    amplitude_variance_across_groups,
    most_discriminative_frequencies,
)
from repro.utils.timeutils import SLOTS_PER_DAY, TimeWindow
from repro.vectorize.normalize import NormalizationMethod


def sinusoid(num_slots, cycles, amplitude=1.0, phase=0.0, offset=0.0):
    n = np.arange(num_slots)
    return offset + amplitude * np.cos(2 * np.pi * cycles * n / num_slots + phase)


class TestDft:
    def test_round_trip(self, rng):
        signal = rng.normal(size=256)
        assert np.allclose(inverse_dft(dft(signal)), signal)

    def test_amplitude_of_pure_tone(self):
        signal = sinusoid(512, cycles=5, amplitude=2.0)
        amplitude = amplitude_spectrum(signal)
        assert amplitude[5] == pytest.approx(2.0 * 512 / 2)
        # All other non-mirror bins are ~0.
        others = np.delete(amplitude, [0, 5, 512 - 5])
        assert np.all(others < 1e-9)

    def test_phase_of_pure_tone(self):
        signal = sinusoid(512, cycles=3, phase=1.0)
        assert phase_spectrum(signal)[3] == pytest.approx(1.0, abs=1e-9)

    def test_matrix_input(self, rng):
        matrix = rng.normal(size=(4, 64))
        spectra = dft(matrix)
        assert spectra.shape == (4, 64)
        assert np.allclose(spectra[2], dft(matrix[2]))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            dft(np.zeros((2, 2, 2)))

    def test_dominant_frequencies(self):
        signal = sinusoid(512, 5, amplitude=3.0) + sinusoid(512, 20, amplitude=1.0)
        assert dominant_frequencies(signal, count=2).tolist() == [5, 20]

    def test_dominant_frequencies_validation(self):
        with pytest.raises(ValueError):
            dominant_frequencies(np.ones(16), count=0)
        with pytest.raises(ValueError):
            dominant_frequencies(np.ones((2, 8)))


class TestPrincipalComponents:
    def test_paper_window_indices(self):
        components = principal_components_for_window(TimeWindow(num_days=28))
        assert components.week == 4
        assert components.day == 28
        assert components.half_day == 56
        assert components.indices() == (4, 28, 56)

    def test_two_week_window(self):
        components = principal_components_for_window(TimeWindow(num_days=14))
        assert components.week == 2
        assert components.day == 14
        assert components.half_day == 28

    def test_short_window_has_no_week_component(self):
        components = principal_components_for_window(TimeWindow(num_days=3))
        assert components.week is None
        assert components.indices() == (3, 6)

    def test_retained_bins_include_mirrors_and_dc(self):
        components = PrincipalComponents(week=4, day=28, half_day=56, num_slots=4032)
        bins = set(components.retained_bins().tolist())
        assert {0, 4, 28, 56, 4032 - 4, 4032 - 28, 4032 - 56} == bins


class TestReconstruction:
    def test_band_limited_signal_is_reconstructed_exactly(self):
        window = TimeWindow(num_days=14)
        components = principal_components_for_window(window)
        n = window.num_slots
        signal = (
            5.0
            + sinusoid(n, components.week, 1.0)
            + sinusoid(n, components.day, 2.0, phase=0.3)
            + sinusoid(n, components.half_day, 0.7, phase=-1.0)
        )
        reconstructed = reconstruct_from_components(signal, components)
        assert np.allclose(reconstructed, signal, atol=1e-9)
        assert reconstruction_energy_loss(signal, components) < 1e-12

    def test_out_of_band_content_removed(self):
        window = TimeWindow(num_days=14)
        components = principal_components_for_window(window)
        n = window.num_slots
        in_band = sinusoid(n, components.day, 2.0)
        out_band = sinusoid(n, 97, 1.5)
        reconstructed = reconstruct_from_components(in_band + out_band, components)
        assert np.allclose(reconstructed, in_band, atol=1e-9)

    def test_matrix_reconstruction(self, rng):
        window = TimeWindow(num_days=7)
        components = principal_components_for_window(window)
        matrix = rng.normal(size=(3, window.num_slots))
        rec = reconstruct_from_components(matrix, components)
        assert rec.shape == matrix.shape

    def test_aggregate_scenario_traffic_loses_little_energy(self, scenario):
        # The paper reports < 6% energy loss for the aggregate traffic.
        components = principal_components_for_window(scenario.window)
        aggregate = scenario.traffic.aggregate()
        assert reconstruction_energy_loss(aggregate, components) < 0.10

    def test_length_mismatch_rejected(self):
        components = principal_components_for_window(TimeWindow(num_days=7))
        with pytest.raises(ValueError):
            reconstruct_from_components(np.ones(10), components)

    def test_loss_curve_is_decreasing(self, scenario):
        aggregate = scenario.traffic.aggregate()
        counts, losses = reconstruction_energy_loss_curve(aggregate, max_components=10)
        assert counts.shape == losses.shape == (10,)
        assert np.all(np.diff(losses) <= 1e-9)


class TestFrequencyFeatures:
    def test_shapes_and_lookup(self, scenario):
        components = principal_components_for_window(scenario.window)
        features = extract_frequency_features(
            scenario.traffic.traffic, scenario.traffic.tower_ids, components
        )
        assert features.amplitudes.shape == (scenario.traffic.num_towers, 3)
        assert features.phases.shape == features.amplitudes.shape
        tower_id = int(scenario.traffic.tower_ids[5])
        assert features.row_of(tower_id) == 5
        with pytest.raises(KeyError):
            features.row_of(987654)

    def test_amplitudes_bounded_for_max_normalisation(self, scenario):
        components = principal_components_for_window(scenario.window)
        features = extract_frequency_features(
            scenario.traffic.traffic,
            scenario.traffic.tower_ids,
            components,
            normalization=NormalizationMethod.MAX,
        )
        assert np.all(features.amplitudes >= 0)
        assert np.all(features.amplitudes <= 1.0 + 1e-9)

    def test_phases_in_range(self, scenario):
        components = principal_components_for_window(scenario.window)
        features = extract_frequency_features(
            scenario.traffic.traffic, scenario.traffic.tower_ids, components
        )
        assert np.all(features.phases <= np.pi + 1e-9)
        assert np.all(features.phases >= -np.pi - 1e-9)

    def test_feature_matrix_default_spec(self, scenario):
        components = principal_components_for_window(scenario.window)
        features = extract_frequency_features(
            scenario.traffic.traffic, scenario.traffic.tower_ids, components
        )
        matrix = features.feature_matrix()
        assert matrix.shape == (scenario.traffic.num_towers, 3)
        assert np.array_equal(matrix[:, 0], features.amplitude("day"))
        assert np.array_equal(matrix[:, 1], features.phase("day"))
        assert np.array_equal(matrix[:, 2], features.amplitude("half_day"))

    def test_unknown_component_rejected(self, scenario):
        components = principal_components_for_window(scenario.window)
        features = extract_frequency_features(
            scenario.traffic.traffic, scenario.traffic.tower_ids, components
        )
        with pytest.raises(KeyError):
            features.amplitude("fortnight")
        with pytest.raises(ValueError):
            features.feature_matrix((("magnitude", "day"),))

    def test_pure_tone_feature_extraction(self):
        window = TimeWindow(num_days=7)
        components = principal_components_for_window(window)
        n = window.num_slots
        signal = 10.0 + 4.0 * np.cos(2 * np.pi * components.day * np.arange(n) / n + 0.5)
        features = extract_frequency_features(
            signal[None, :], np.array([0]), components, normalization=NormalizationMethod.NONE
        )
        assert features.amplitude("day")[0] == pytest.approx(4.0)
        assert features.phase("day")[0] == pytest.approx(0.5)

    def test_cluster_statistics(self, scenario):
        components = principal_components_for_window(scenario.window)
        features = extract_frequency_features(
            scenario.traffic.traffic, scenario.traffic.tower_ids, components
        )
        labels = scenario.ground_truth_labels()
        stats = cluster_feature_statistics(features, labels)
        assert set(stats) == set(np.unique(labels).tolist())
        for per_component in stats.values():
            for name in ("week", "day", "half_day"):
                amplitude_mean, amplitude_std = per_component[name]["amplitude"]
                assert amplitude_std >= 0
                assert 0 <= amplitude_mean <= 1.5


class TestVariance:
    def test_principal_components_have_high_variance(self, scenario):
        labels = scenario.ground_truth_labels()
        series = {
            int(label): scenario.traffic.traffic[labels == label].sum(axis=0)
            for label in np.unique(labels)
        }
        top = most_discriminative_frequencies(series, count=3)
        components = principal_components_for_window(scenario.window)
        # The day and half-day components must be among the most
        # discriminative frequencies (the week component competes with noise
        # for short windows).
        assert components.day in top or components.half_day in top

    def test_variance_output_shapes(self, scenario):
        labels = scenario.ground_truth_labels()
        series = {
            int(label): scenario.traffic.traffic[labels == label].sum(axis=0)
            for label in np.unique(labels)
        }
        freqs, variances = amplitude_variance_across_groups(series, max_frequency=100)
        assert freqs.shape == variances.shape == (101,)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            amplitude_variance_across_groups({0: np.ones(10), 1: np.ones(12)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            amplitude_variance_across_groups({})
