"""Tests for the traffic-prediction extension (repro.predict)."""

import numpy as np
import pytest

from repro.analysis.temporal import weekly_profile
from repro.predict.baselines import (
    MovingAveragePredictor,
    NaivePredictor,
    SeasonalNaivePredictor,
)
from repro.predict.evaluate import ForecastMetrics, backtest, evaluate_forecast
from repro.predict.pattern import PatternPredictor
from repro.predict.spectral import SpectralPredictor
from repro.synth.activity import ActivityProfileLibrary
from repro.synth.regions import RegionType
from repro.utils.timeutils import SLOTS_PER_DAY, SLOTS_PER_WEEK


@pytest.fixture(scope="module")
def office_series():
    """Three weeks of noiseless office-pattern traffic (mean level 100)."""
    library = ActivityProfileLibrary()
    return 100.0 * library.pure(RegionType.OFFICE).tile(21)


class TestNaive:
    def test_constant_forecast(self):
        predictor = NaivePredictor().fit(np.array([1.0, 2.0, 7.0]))
        assert np.all(predictor.predict(5) == 7.0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            NaivePredictor().predict(3)

    def test_rejects_negative_history(self):
        with pytest.raises(ValueError):
            NaivePredictor().fit(np.array([-1.0]))

    def test_rejects_bad_horizon(self):
        predictor = NaivePredictor().fit(np.ones(3))
        with pytest.raises(ValueError):
            predictor.predict(0)


class TestSeasonalNaive:
    def test_repeats_last_week(self, office_series):
        predictor = SeasonalNaivePredictor().fit(office_series)
        assert predictor.season_slots == SLOTS_PER_WEEK
        forecast = predictor.predict(SLOTS_PER_WEEK)
        assert np.allclose(forecast, office_series[-SLOTS_PER_WEEK:])

    def test_perfect_on_purely_periodic_signal(self, office_series):
        predictor = SeasonalNaivePredictor().fit(office_series[:-SLOTS_PER_WEEK])
        forecast = predictor.predict(SLOTS_PER_WEEK)
        metrics = evaluate_forecast(office_series[-SLOTS_PER_WEEK:], forecast)
        assert metrics.smape < 1e-9

    def test_daily_fallback_for_short_history(self):
        history = np.abs(np.sin(np.arange(2 * SLOTS_PER_DAY))) + 1.0
        predictor = SeasonalNaivePredictor().fit(history)
        assert predictor.season_slots == SLOTS_PER_DAY

    def test_cyclic_extension(self):
        history = np.arange(SLOTS_PER_DAY, dtype=float)
        predictor = SeasonalNaivePredictor(season_slots=SLOTS_PER_DAY).fit(history)
        forecast = predictor.predict(2 * SLOTS_PER_DAY + 5)
        assert np.array_equal(forecast[:SLOTS_PER_DAY], history)
        assert np.array_equal(forecast[SLOTS_PER_DAY : 2 * SLOTS_PER_DAY], history)
        assert forecast.size == 2 * SLOTS_PER_DAY + 5

    def test_history_shorter_than_season_rejected(self):
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(season_slots=SLOTS_PER_WEEK).fit(np.ones(SLOTS_PER_DAY))

    def test_invalid_season(self):
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(season_slots=0)


class TestMovingAverage:
    def test_constant_at_window_mean(self):
        history = np.concatenate([np.zeros(100), np.full(144, 6.0)])
        predictor = MovingAveragePredictor(window=144).fit(history)
        assert np.all(predictor.predict(10) == pytest.approx(6.0))

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=10).fit(np.ones(5))


class TestSpectralPredictor:
    def test_recovers_pure_periodic_signal(self):
        n = 3 * SLOTS_PER_WEEK
        t = np.arange(n)
        signal = 50 + 10 * np.cos(2 * np.pi * t / SLOTS_PER_DAY + 0.4)
        predictor = SpectralPredictor().fit(signal[: 2 * SLOTS_PER_WEEK])
        forecast = predictor.predict(SLOTS_PER_WEEK)
        metrics = evaluate_forecast(signal[2 * SLOTS_PER_WEEK :], forecast)
        assert metrics.smape < 0.01

    def test_beats_naive_on_template_traffic(self, office_series):
        train = office_series[: 2 * SLOTS_PER_WEEK]
        actual = office_series[2 * SLOTS_PER_WEEK :]
        spectral = SpectralPredictor().fit(train).predict(SLOTS_PER_WEEK)
        naive = NaivePredictor().fit(train).predict(SLOTS_PER_WEEK)
        assert evaluate_forecast(actual, spectral).rmse < evaluate_forecast(actual, naive).rmse

    def test_component_amplitudes_identify_daily_period(self):
        n = 2 * SLOTS_PER_WEEK
        t = np.arange(n)
        signal = 20 + 5 * np.cos(2 * np.pi * t / SLOTS_PER_DAY)
        predictor = SpectralPredictor().fit(signal)
        amplitudes = predictor.component_amplitudes
        assert max(amplitudes, key=amplitudes.get) == SLOTS_PER_DAY
        assert amplitudes[SLOTS_PER_DAY] == pytest.approx(5.0, rel=0.05)

    def test_non_negative_forecasts(self):
        rng = np.random.default_rng(0)
        history = np.clip(rng.normal(1.0, 2.0, size=SLOTS_PER_WEEK), 0, None)
        forecast = SpectralPredictor().fit(history).predict(SLOTS_PER_DAY)
        assert np.all(forecast >= 0)

    def test_short_history_drops_week_component(self):
        history = np.abs(np.sin(np.arange(2 * SLOTS_PER_DAY))) + 1
        predictor = SpectralPredictor().fit(history)
        assert SLOTS_PER_WEEK not in predictor.component_amplitudes

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SpectralPredictor(periods_slots=())
        with pytest.raises(ValueError):
            SpectralPredictor(periods_slots=(1,))

    def test_unfitted_predict_rejected(self):
        with pytest.raises(RuntimeError):
            SpectralPredictor().predict(10)


class TestPatternPredictor:
    def make_predictor(self, scale=1.0, start=0):
        library = ActivityProfileLibrary()
        profile = scale * library.pure(RegionType.OFFICE).weekly
        return PatternPredictor(profile, start_slot_of_week=start)

    def test_recovers_level_and_shape(self, office_series):
        predictor = self.make_predictor()
        predictor.fit(office_series[: 2 * SLOTS_PER_WEEK])
        assert predictor.level == pytest.approx(100.0, rel=0.01)
        forecast = predictor.predict(SLOTS_PER_WEEK)
        metrics = evaluate_forecast(office_series[2 * SLOTS_PER_WEEK :], forecast)
        assert metrics.smape < 0.01

    def test_profile_scale_does_not_matter(self, office_series):
        small = self.make_predictor(scale=1.0).fit(office_series[:SLOTS_PER_WEEK])
        large = self.make_predictor(scale=50.0).fit(office_series[:SLOTS_PER_WEEK])
        assert np.allclose(small.predict(100), large.predict(100))

    def test_start_slot_alignment(self, office_series):
        # History starting mid-week must still align the shape correctly.
        offset = 300
        history = office_series[offset : offset + SLOTS_PER_WEEK]
        predictor = self.make_predictor(start=offset % SLOTS_PER_WEEK).fit(history)
        forecast = predictor.predict(200)
        actual = office_series[offset + SLOTS_PER_WEEK : offset + SLOTS_PER_WEEK + 200]
        assert evaluate_forecast(actual, forecast).smape < 0.01

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            PatternPredictor(np.ones(10))
        with pytest.raises(ValueError):
            PatternPredictor(np.zeros(SLOTS_PER_WEEK))
        with pytest.raises(ValueError):
            PatternPredictor(np.ones(SLOTS_PER_WEEK), start_slot_of_week=SLOTS_PER_WEEK)

    def test_unfitted_level_rejected(self):
        with pytest.raises(RuntimeError):
            self.make_predictor().level


class TestEvaluation:
    def test_perfect_forecast_has_zero_errors(self):
        actual = np.array([1.0, 2.0, 3.0])
        metrics = evaluate_forecast(actual, actual)
        assert metrics.mae == 0.0 and metrics.rmse == 0.0 and metrics.smape == 0.0

    def test_known_errors(self):
        metrics = evaluate_forecast(np.array([1.0, 1.0]), np.array([2.0, 0.0]))
        assert metrics.mae == pytest.approx(1.0)
        assert metrics.rmse == pytest.approx(1.0)

    def test_smape_bounded(self):
        metrics = evaluate_forecast(np.array([0.0, 1.0]), np.array([5.0, 0.0]))
        assert 0.0 <= metrics.smape <= 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            evaluate_forecast(np.ones(3), np.ones(4))

    def test_as_dict(self):
        metrics = ForecastMetrics(mae=1.0, rmse=2.0, smape=0.5)
        assert metrics.as_dict() == {"mae": 1.0, "rmse": 2.0, "smape": 0.5}

    def test_backtest_runs_multiple_folds(self, office_series):
        metrics = backtest(
            office_series,
            lambda: SeasonalNaivePredictor(season_slots=SLOTS_PER_DAY),
            train_slots=SLOTS_PER_WEEK,
            horizon=SLOTS_PER_DAY,
        )
        assert metrics.smape < 0.35

    def test_backtest_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            backtest(np.ones(100), NaivePredictor, train_slots=90, horizon=20)

    def test_backtest_invalid_step(self, office_series):
        with pytest.raises(ValueError):
            backtest(
                office_series,
                NaivePredictor,
                train_slots=SLOTS_PER_WEEK,
                horizon=SLOTS_PER_DAY,
                step=0,
            )


class TestOnSyntheticScenario:
    def test_pattern_predictor_beats_naive_on_real_towers(self, scenario, fitted_model):
        """The paper's operational claim: knowing a tower's pattern helps
        predict its traffic."""
        result = fitted_model.result
        window = result.window
        horizon = SLOTS_PER_DAY
        train_slots = window.num_slots - horizon

        improvements = 0
        count = 0
        for cluster in range(result.num_clusters):
            members = result.cluster_members(cluster)[:3]
            cluster_profile = weekly_profile(result.cluster_aggregate(cluster), window)
            for row in members:
                series = result.vectorized.raw.traffic[row]
                train, actual = series[:train_slots], series[train_slots:]
                pattern_forecast = (
                    PatternPredictor(cluster_profile).fit(train).predict(horizon)
                )
                naive_forecast = NaivePredictor().fit(train).predict(horizon)
                pattern_error = evaluate_forecast(actual, pattern_forecast).rmse
                naive_error = evaluate_forecast(actual, naive_forecast).rmse
                improvements += pattern_error < naive_error
                count += 1
        assert improvements / count > 0.7
