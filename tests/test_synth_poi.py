"""Tests for repro.synth.poi."""

import numpy as np
import pytest

from repro.synth.poi import (
    POICategory,
    POIGenerationConfig,
    generate_pois,
    poi_category_totals,
    poi_coordinate_arrays,
)
from repro.synth.regions import RegionType, generate_regions


@pytest.fixture(scope="module")
def regions():
    return generate_regions(rng=4)


@pytest.fixture(scope="module")
def pois(regions):
    return generate_pois(regions, rng=4)


class TestPOICategory:
    def test_four_categories(self):
        assert len(POICategory.ordered()) == 4

    def test_indices(self):
        assert POICategory.RESIDENT.index == 0
        assert POICategory.ENTERTAINMENT.index == 3


class TestGeneration:
    def test_every_region_has_pois(self, regions, pois):
        regions_with_pois = {poi.region_id for poi in pois}
        assert regions_with_pois == {region.region_id for region in regions}

    def test_positions_inside_owning_region(self, regions, pois):
        by_id = {region.region_id: region for region in regions}
        for poi in pois[:500]:
            assert by_id[poi.region_id].contains(poi.lat, poi.lon)

    def test_reproducible(self, regions):
        a = generate_pois(regions, rng=9)
        b = generate_pois(regions, rng=9)
        assert len(a) == len(b)
        assert all(x.lat == y.lat and x.category == y.category for x, y in zip(a, b))

    def test_poi_ids_unique(self, pois):
        ids = [poi.poi_id for poi in pois]
        assert len(ids) == len(set(ids))

    def test_pure_regions_dominated_by_matching_category(self, regions, pois):
        by_region: dict[int, list] = {}
        for poi in pois:
            by_region.setdefault(poi.region_id, []).append(poi)
        for region in regions:
            if region.region_type is RegionType.COMPREHENSIVE:
                continue
            counts = np.zeros(4)
            for poi in by_region[region.region_id]:
                counts[poi.category.index] += 1
            expected_index = {
                RegionType.RESIDENT: 0,
                RegionType.TRANSPORT: 1,
                RegionType.OFFICE: 2,
                RegionType.ENTERTAINMENT: 3,
            }[region.region_type]
            if counts.sum() >= 20:  # only assert when the sample is meaningful
                assert np.argmax(counts) == expected_index

    def test_scale_parameter_scales_counts(self, regions):
        small = generate_pois(regions, POIGenerationConfig(poi_per_region_scale=0.3), rng=5)
        large = generate_pois(regions, POIGenerationConfig(poi_per_region_scale=1.5), rng=5)
        assert len(large) > 2 * len(small)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            POIGenerationConfig(poi_per_region_scale=0.0)
        with pytest.raises(ValueError):
            POIGenerationConfig(dominant_fraction=1.0)


class TestHelpers:
    def test_coordinate_arrays_shapes(self, pois):
        lats, lons, cats = poi_coordinate_arrays(pois)
        assert lats.shape == lons.shape == cats.shape == (len(pois),)

    def test_coordinate_arrays_empty(self):
        lats, lons, cats = poi_coordinate_arrays([])
        assert lats.size == 0 and lons.size == 0 and cats.size == 0

    def test_category_totals_sum(self, pois):
        totals = poi_category_totals(pois)
        assert sum(totals.values()) == len(pois)
        assert all(category in totals for category in POICategory.ordered())
