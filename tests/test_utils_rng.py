"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, derive_rng, ensure_rng


class TestEnsureRng:
    def test_accepts_int_seed(self):
        rng = ensure_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_stream(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_passes_generator_through(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_negative_stream_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(np.random.default_rng(0), -1)

    def test_derivation_is_reproducible(self):
        a = derive_rng(np.random.default_rng(5), 3).random()
        b = derive_rng(np.random.default_rng(5), 3).random()
        assert a == b

    def test_different_streams_differ(self):
        parent = np.random.default_rng(5)
        child_a = derive_rng(parent, 0)
        parent2 = np.random.default_rng(5)
        child_b = derive_rng(parent2, 1)
        assert child_a.random() != child_b.random()


class TestSeedSequenceFactory:
    def test_negative_root_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-1)

    def test_same_name_same_stream(self):
        factory = SeedSequenceFactory(10)
        assert factory.generator("traffic").random() == factory.generator("traffic").random()

    def test_different_names_differ(self):
        factory = SeedSequenceFactory(10)
        assert factory.generator("traffic").random() != factory.generator("layout").random()

    def test_different_roots_differ(self):
        a = SeedSequenceFactory(1).generator("x").random()
        b = SeedSequenceFactory(2).generator("x").random()
        assert a != b

    def test_seed_method_reproducible_and_bounded(self):
        factory = SeedSequenceFactory(3)
        seed = factory.seed("city")
        assert seed == factory.seed("city")
        assert 0 <= seed < 2**31

    def test_empty_name_rejected(self):
        factory = SeedSequenceFactory(3)
        with pytest.raises(ValueError):
            factory.generator("")
        with pytest.raises(ValueError):
            factory.seed("")

    def test_root_seed_property(self):
        assert SeedSequenceFactory(99).root_seed == 99
