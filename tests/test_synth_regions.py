"""Tests for repro.synth.regions."""

import numpy as np
import pytest

from repro.synth.regions import (
    Region,
    RegionLayoutConfig,
    RegionType,
    generate_regions,
    pure_mixture,
    region_type_counts,
)


class TestRegionType:
    def test_five_types(self):
        assert len(RegionType.ordered()) == 5

    def test_pure_types_exclude_comprehensive(self):
        assert RegionType.COMPREHENSIVE not in RegionType.pure_types()
        assert len(RegionType.pure_types()) == 4

    def test_indices_match_paper_order(self):
        assert RegionType.RESIDENT.index == 0
        assert RegionType.TRANSPORT.index == 1
        assert RegionType.OFFICE.index == 2
        assert RegionType.ENTERTAINMENT.index == 3
        assert RegionType.COMPREHENSIVE.index == 4


class TestPureMixture:
    def test_one_hot(self):
        assert pure_mixture(RegionType.OFFICE) == (0.0, 0.0, 1.0, 0.0)

    def test_comprehensive_rejected(self):
        with pytest.raises(ValueError):
            pure_mixture(RegionType.COMPREHENSIVE)


class TestRegion:
    def make_region(self, **kwargs) -> Region:
        defaults = dict(
            region_id=0,
            region_type=RegionType.RESIDENT,
            center_lat=31.2,
            center_lon=121.5,
            half_height_deg=0.01,
            half_width_deg=0.02,
            mixture=pure_mixture(RegionType.RESIDENT),
        )
        defaults.update(kwargs)
        return Region(**defaults)

    def test_bounds(self):
        region = self.make_region()
        assert region.lat_min == pytest.approx(31.19)
        assert region.lat_max == pytest.approx(31.21)
        assert region.lon_min == pytest.approx(121.48)
        assert region.lon_max == pytest.approx(121.52)

    def test_contains(self):
        region = self.make_region()
        assert region.contains(31.2, 121.5)
        assert not region.contains(31.3, 121.5)

    def test_sample_point_inside(self):
        region = self.make_region()
        rng = np.random.default_rng(0)
        for _ in range(20):
            lat, lon = region.sample_point(rng)
            assert region.contains(lat, lon)

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            self.make_region(half_height_deg=0.0)

    def test_invalid_mixture_rejected(self):
        with pytest.raises(ValueError):
            self.make_region(mixture=(0.5, 0.5, 0.5, 0.5))

    def test_mixture_as_dict(self):
        region = self.make_region()
        mixture = region.mixture_as_dict()
        assert mixture[RegionType.RESIDENT] == 1.0
        assert sum(mixture.values()) == pytest.approx(1.0)


class TestGenerateRegions:
    def test_default_count(self):
        regions = generate_regions(rng=0)
        assert len(regions) == RegionLayoutConfig().num_regions

    def test_every_type_present(self):
        regions = generate_regions(rng=1)
        counts = region_type_counts(regions)
        assert all(count >= 1 for count in counts.values())

    def test_reproducible(self):
        a = generate_regions(rng=5)
        b = generate_regions(rng=5)
        assert [r.center_lat for r in a] == [r.center_lat for r in b]

    def test_ids_are_sequential(self):
        regions = generate_regions(rng=2)
        assert [region.region_id for region in regions] == list(range(len(regions)))

    def test_too_few_regions_rejected(self):
        with pytest.raises(ValueError):
            generate_regions(RegionLayoutConfig(num_regions=3), rng=0)

    def test_comprehensive_regions_have_soft_mixture(self):
        regions = generate_regions(rng=3)
        comp = [r for r in regions if r.region_type is RegionType.COMPREHENSIVE]
        assert comp
        for region in comp:
            mixture = np.array(region.mixture)
            assert mixture.sum() == pytest.approx(1.0, abs=1e-6)
            assert mixture.max() < 0.9  # not degenerate one-hot

    def test_pure_regions_have_one_hot_mixture(self):
        regions = generate_regions(rng=3)
        for region in regions:
            if region.region_type in RegionType.pure_types():
                assert max(region.mixture) == 1.0

    def test_office_closer_to_center_than_resident_on_average(self):
        cfg = RegionLayoutConfig()
        regions = generate_regions(cfg, rng=12)

        def mean_radius(region_type):
            rs = [
                np.hypot(r.center_lat - cfg.center_lat, r.center_lon - cfg.center_lon)
                for r in regions
                if r.region_type is region_type
            ]
            return np.mean(rs)

        assert mean_radius(RegionType.OFFICE) < mean_radius(RegionType.RESIDENT)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RegionLayoutConfig(type_probabilities=(0.5, 0.5, 0.5, 0.0, 0.0))
        with pytest.raises(ValueError):
            RegionLayoutConfig(region_half_extent_deg=(0.02, 0.01))
