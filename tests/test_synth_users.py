"""Tests for repro.synth.users."""

import numpy as np
import pytest

from repro.synth.regions import RegionType, generate_regions
from repro.synth.towers import TowerPlacementConfig, place_towers
from repro.synth.users import UserPopulationConfig, generate_users, users_by_anchor


@pytest.fixture(scope="module")
def towers():
    regions = generate_regions(rng=8)
    return place_towers(regions, TowerPlacementConfig(num_towers=120), rng=8)


@pytest.fixture(scope="module")
def users(towers):
    return generate_users(towers, UserPopulationConfig(num_users=600), rng=8)


class TestGeneration:
    def test_count(self, users):
        assert len(users) == 600

    def test_unique_ids(self, users):
        assert len({user.user_id for user in users}) == len(users)

    def test_anchor_towers_exist(self, towers, users):
        tower_ids = {tower.tower_id for tower in towers}
        for user in users[:100]:
            assert set(user.anchors().values()) <= tower_ids

    def test_positive_activity(self, users):
        assert all(user.activity_level > 0 for user in users)

    def test_reproducible(self, towers):
        a = generate_users(towers, UserPopulationConfig(num_users=50), rng=1)
        b = generate_users(towers, UserPopulationConfig(num_users=50), rng=1)
        assert [u.home_tower for u in a] == [u.home_tower for u in b]

    def test_empty_towers_rejected(self):
        with pytest.raises(ValueError):
            generate_users([], rng=0)

    def test_home_anchors_prefer_residential(self, towers, users):
        by_id = {tower.tower_id: tower for tower in towers}
        type_counts = {rt: 0 for rt in RegionType.ordered()}
        tower_counts = {rt: 0 for rt in RegionType.ordered()}
        for tower in towers:
            tower_counts[tower.region_type] += 1
        for user in users:
            type_counts[by_id[user.home_tower].region_type] += 1
        # Per-tower home rate should be higher in residential than in office areas.
        resident_rate = type_counts[RegionType.RESIDENT] / max(tower_counts[RegionType.RESIDENT], 1)
        office_rate = type_counts[RegionType.OFFICE] / max(tower_counts[RegionType.OFFICE], 1)
        assert resident_rate > office_rate


class TestAnchorsGrouping:
    def test_groups_cover_all_users(self, users):
        groups = users_by_anchor(users, "home")
        assert sum(len(group) for group in groups.values()) == len(users)

    def test_invalid_role_rejected(self, users):
        with pytest.raises(ValueError):
            users_by_anchor(users, "vacation")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UserPopulationConfig(num_users=0)
