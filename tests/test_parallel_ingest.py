"""Parallel↔serial equivalence suite for the shard-parallel ingest plane.

The serial chunk-streaming path (``workers=0``) is the equivalence
reference: parallel matrices must agree with it to within the documented
float tolerance (the parallel reducer sums per-shard partials, a different
accumulation order than the serial single-accumulator pass), and must be
bit-for-bit deterministic run-to-run for a fixed worker count.
"""

import os

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.model import TrafficPatternModel
from repro.ingest.batch import RecordBatch
from repro.ingest.dedup import clean_batch
from repro.utils.timeutils import SECONDS_PER_DAY, SLOT_SECONDS, TimeWindow
from repro.vectorize.aggregate import (
    TowerRowIndex,
    aggregate_batches,
    aggregate_records_streaming,
)
from repro.vectorize.parallel import (
    ParallelIngestError,
    clean_chunk,
    parallel_aggregate_batches,
    parallel_aggregate_batches_with_stats,
    resolve_workers,
)

NUM_TOWERS = 40
WINDOW = TimeWindow(num_days=7)
TOWER_IDS = list(range(NUM_TOWERS))

#: Documented float tolerance of parallel-vs-serial matrices (ulp-level
#: differences from the different accumulation order).
RTOL = 1e-9

#: Tower id whose presence makes :func:`_fail_on_marker` blow up.
MARKER_TOWER = 987_654


def make_batch(rng, n=4000, num_towers=NUM_TOWERS, tower_offset=0):
    """A batch of synthetic already-clean records."""
    starts = rng.uniform(0, WINDOW.num_seconds, size=n)
    durations = rng.exponential(0.6 * SLOT_SECONDS, size=n)
    durations[rng.random(n) < 0.1] *= 8.0  # multi-slot records
    durations[rng.random(n) < 0.05] = 0.0  # zero-duration records
    return RecordBatch(
        user_id=rng.integers(0, 500, size=n),
        tower_id=rng.integers(tower_offset, tower_offset + num_towers, size=n),
        start_s=starts,
        end_s=np.minimum(starts + durations, float(WINDOW.num_seconds)),
        bytes_used=rng.lognormal(9.0, 1.0, size=n),
        network=np.where(rng.random(n) < 0.5, 1, 0).astype(np.uint8),
    )


def empty_batch():
    return RecordBatch(
        user_id=np.array([], dtype=np.int64),
        tower_id=np.array([], dtype=np.int64),
        start_s=np.array([]),
        end_s=np.array([]),
        bytes_used=np.array([]),
        network=np.array([], dtype=np.uint8),
    )


@pytest.fixture(scope="module")
def chunk_stream():
    rng = np.random.default_rng(2015)
    return [make_batch(rng) for _ in range(9)]


@pytest.fixture(scope="module")
def serial_matrix(chunk_stream):
    return aggregate_batches(chunk_stream, WINDOW, TOWER_IDS)


# Module-level prepare callables: the parallel plane pickles them into the
# workers, so they cannot be lambdas or closures.


def _double_bytes(batch):
    return batch.with_bytes(batch.bytes_used * 2.0)


def _fail_on_marker(batch):
    if np.any(batch.tower_id == MARKER_TOWER):
        raise ValueError("synthetic prepare failure on the marker tower")
    return batch


def _exit_hard(batch):
    os._exit(3)


class TestResolveWorkers:
    def test_zero_means_serial(self):
        assert resolve_workers(0) == 0

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_minus_one_means_all_cores(self):
        assert resolve_workers(-1) >= 1

    def test_below_minus_one_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-2)


class TestTowerRowIndex:
    def test_maps_ids_to_rows_in_given_order(self):
        index = TowerRowIndex(np.array([30, 10, 20]))
        rows = index.rows_of(np.array([10, 20, 30, 10]))
        assert rows.tolist() == [1, 2, 0, 1]

    def test_unknown_ids_map_to_minus_one(self):
        index = TowerRowIndex(np.array([5, 7]))
        assert index.rows_of(np.array([5, 6, 8, 7])).tolist() == [0, -1, -1, 1]

    def test_empty_index_maps_everything_to_minus_one(self):
        index = TowerRowIndex(np.array([], dtype=np.int64))
        assert index.rows_of(np.array([1, 2])).tolist() == [-1, -1]
        assert len(index) == 0


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matrix_matches_serial_within_tolerance(
        self, chunk_stream, serial_matrix, workers
    ):
        parallel = aggregate_batches(
            chunk_stream, WINDOW, TOWER_IDS, workers=workers
        )
        assert np.array_equal(parallel.tower_ids, serial_matrix.tower_ids)
        assert parallel.window.num_slots == serial_matrix.window.num_slots
        assert np.allclose(
            parallel.traffic, serial_matrix.traffic, rtol=RTOL, atol=0.0
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_deterministic_run_to_run(self, chunk_stream, workers):
        first = parallel_aggregate_batches(
            chunk_stream, WINDOW, TOWER_IDS, workers=workers
        )
        second = parallel_aggregate_batches(
            chunk_stream, WINDOW, TOWER_IDS, workers=workers
        )
        assert np.array_equal(first.traffic, second.traffic)

    def test_prepare_runs_inside_the_workers(self, chunk_stream):
        serial = aggregate_batches(
            chunk_stream, WINDOW, TOWER_IDS, prepare=_double_bytes
        )
        parallel = aggregate_batches(
            chunk_stream, WINDOW, TOWER_IDS, workers=2, prepare=_double_bytes
        )
        assert np.allclose(parallel.traffic, serial.traffic, rtol=RTOL, atol=0.0)

    def test_clean_chunk_prepare_matches_serial_cleaning(self):
        rng = np.random.default_rng(3)
        base = make_batch(rng, n=3000)
        corrupted = RecordBatch.concat([base, base.take(np.arange(200))])
        chunks = list(corrupted.iter_chunks(500))

        def serial_cleaned():
            for chunk in chunks:
                cleaned, _ = clean_batch(chunk)
                yield cleaned

        serial = aggregate_batches(serial_cleaned(), WINDOW, TOWER_IDS)
        parallel = aggregate_batches(
            chunks, WINDOW, TOWER_IDS, workers=2, prepare=clean_chunk
        )
        assert np.allclose(parallel.traffic, serial.traffic, rtol=RTOL, atol=0.0)

    def test_streaming_records_entry_point_forwards_workers(self, chunk_stream):
        records = [
            record for batch in chunk_stream[:2] for record in batch.to_records()
        ]
        serial = aggregate_records_streaming(
            records, WINDOW, TOWER_IDS, chunk_size=1500
        )
        parallel = aggregate_records_streaming(
            records, WINDOW, TOWER_IDS, chunk_size=1500, workers=2
        )
        assert np.allclose(parallel.traffic, serial.traffic, rtol=RTOL, atol=0.0)

    def test_stats_count_folded_records(self, chunk_stream):
        matrix, stats = parallel_aggregate_batches_with_stats(
            chunk_stream, WINDOW, TOWER_IDS, workers=2
        )
        total = sum(len(batch) for batch in chunk_stream)
        assert stats.workers == 2
        assert stats.chunks == len(chunk_stream)
        assert stats.records_seen == total
        assert stats.records_folded == total  # every tower known, in-window
        assert matrix.traffic.sum() > 0


class TestEdgeCases:
    def test_empty_stream_yields_zero_matrix(self):
        matrix = aggregate_batches(iter(()), WINDOW, TOWER_IDS, workers=2)
        assert matrix.traffic.shape == (NUM_TOWERS, WINDOW.num_slots)
        assert not matrix.traffic.any()

    def test_zero_record_batches_are_harmless(self):
        matrix = aggregate_batches(
            [empty_batch(), empty_batch()], WINDOW, TOWER_IDS, workers=2
        )
        assert not matrix.traffic.any()

    def test_unknown_towers_are_ignored(self):
        rng = np.random.default_rng(1)
        known = make_batch(rng, n=1000)
        unknown = make_batch(rng, n=1000, tower_offset=10_000)
        serial = aggregate_batches([known], WINDOW, TOWER_IDS)
        parallel = aggregate_batches(
            [known, unknown], WINDOW, TOWER_IDS, workers=2
        )
        assert np.allclose(parallel.traffic, serial.traffic, rtol=RTOL, atol=0.0)

    def test_no_towers_yields_empty_matrix(self):
        rng = np.random.default_rng(2)
        matrix = aggregate_batches([make_batch(rng, n=100)], WINDOW, [], workers=2)
        assert matrix.traffic.shape == (0, WINDOW.num_slots)

    def test_workers_below_minus_one_rejected(self, chunk_stream):
        with pytest.raises(ValueError, match="workers"):
            aggregate_batches(chunk_stream, WINDOW, TOWER_IDS, workers=-2)


class TestWorkerFailures:
    def test_prepare_exception_surfaces_as_clean_error(self):
        rng = np.random.default_rng(4)
        poison = make_batch(rng, n=50)
        poison.tower_id[0] = MARKER_TOWER
        stream = [make_batch(rng, n=50) for _ in range(6)] + [poison]
        with pytest.raises(ParallelIngestError, match="synthetic prepare failure"):
            parallel_aggregate_batches(
                stream, WINDOW, TOWER_IDS, workers=2, prepare=_fail_on_marker
            )

    def test_worker_hard_death_is_detected_not_hung(self):
        rng = np.random.default_rng(5)
        stream = [make_batch(rng, n=50) for _ in range(8)]
        with pytest.raises(ParallelIngestError, match="died with exit code 3"):
            parallel_aggregate_batches(
                stream, WINDOW, TOWER_IDS, workers=2, prepare=_exit_hard
            )


class TestModelIntegration:
    @pytest.fixture(scope="class")
    def daily_batches(self):
        rng = np.random.default_rng(6)
        batches = []
        for day in range(WINDOW.num_days):
            batch = make_batch(rng, n=2500)
            starts = rng.uniform(
                day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY, size=len(batch)
            )
            batch = RecordBatch(
                user_id=batch.user_id,
                tower_id=batch.tower_id,
                start_s=starts,
                end_s=np.minimum(
                    starts + batch.duration_s, float(WINDOW.num_seconds)
                ),
                bytes_used=batch.bytes_used,
                network=batch.network,
            )
            batches.append(batch)
        return batches

    def test_fit_batches_parallel_matches_serial_matrix(self, daily_batches):
        serial = TrafficPatternModel(ModelConfig(num_clusters=3))
        serial.fit_batches(daily_batches[:4], WINDOW, TOWER_IDS)
        parallel = TrafficPatternModel(ModelConfig(num_clusters=3))
        parallel.fit_batches(daily_batches[:4], WINDOW, TOWER_IDS, workers=2)
        assert np.allclose(
            parallel.result.vectorized.raw.traffic,
            serial.result.vectorized.raw.traffic,
            rtol=RTOL,
            atol=0.0,
        )

    def test_config_workers_field_is_the_default(self, daily_batches):
        explicit = TrafficPatternModel(ModelConfig(num_clusters=3))
        explicit.fit_batches(daily_batches[:2], WINDOW, TOWER_IDS, workers=2)
        configured = TrafficPatternModel(ModelConfig(num_clusters=3, workers=2))
        configured.fit_batches(daily_batches[:2], WINDOW, TOWER_IDS)
        assert np.array_equal(
            configured.result.vectorized.raw.traffic,
            explicit.result.vectorized.raw.traffic,
        )

    def test_update_parallel_matches_serial_update(self, daily_batches):
        def fitted():
            model = TrafficPatternModel(ModelConfig(num_clusters=3))
            model.fit_batches(daily_batches[:5], WINDOW, TOWER_IDS)
            return model

        serial = fitted()
        serial_result = serial.update(daily_batches[5:])
        parallel = fitted()
        parallel_result = parallel.update(daily_batches[5:], workers=2)
        assert np.allclose(
            parallel_result.vectorized.raw.traffic,
            serial_result.vectorized.raw.traffic,
            rtol=RTOL,
            atol=0.0,
        )
        assert (
            parallel_result.extras["update_stats"]
            == serial_result.extras["update_stats"]
        )

    def test_config_rejects_workers_below_minus_one(self):
        with pytest.raises(ValueError, match="workers"):
            ModelConfig(workers=-2)
