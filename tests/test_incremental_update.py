"""Tests for incremental day-over-day updates (model.update + stage reuse)."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.model import TrafficPatternModel
from repro.ingest.batch import RecordBatch
from repro.synth.scenario import ScenarioConfig, generate_scenario
from repro.synth.traffic import TowerTrafficMatrix
from repro.utils.timeutils import SECONDS_PER_DAY, SLOT_SECONDS, TimeWindow
from repro.vectorize.aggregate import aggregate_batches, scatter_batch_into

NUM_TOWERS = 40
WINDOW = TimeWindow(num_days=7)
TOWER_IDS = list(range(NUM_TOWERS))


def day_batch(rng, day, n=3000, num_towers=NUM_TOWERS):
    """One synthetic day of already-clean records."""
    starts = rng.uniform(day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY, size=n)
    durations = rng.exponential(0.5 * SLOT_SECONDS, size=n)
    return RecordBatch(
        user_id=rng.integers(0, 400, size=n),
        tower_id=rng.integers(0, num_towers, size=n),
        start_s=starts,
        end_s=np.minimum(starts + durations, float(WINDOW.num_seconds)),
        bytes_used=rng.lognormal(9.0, 1.0, size=n),
        network=np.zeros(n, dtype=np.uint8),
    )


def empty_batch():
    return RecordBatch(
        user_id=np.array([], dtype=np.int64),
        tower_id=np.array([], dtype=np.int64),
        start_s=np.array([]),
        end_s=np.array([]),
        bytes_used=np.array([]),
        network=np.array([], dtype=np.uint8),
    )


@pytest.fixture(scope="module")
def daily_batches():
    rng = np.random.default_rng(42)
    return [day_batch(rng, day) for day in range(WINDOW.num_days)]


class TestScatterBatchInto:
    def test_matches_streaming_aggregation_bit_for_bit(self, daily_batches):
        full = aggregate_batches(daily_batches, WINDOW, TOWER_IDS)
        partial = aggregate_batches(daily_batches[:-1], WINDOW, TOWER_IDS)
        scatter_batch_into(partial, daily_batches[-1])
        assert np.array_equal(full.traffic, partial.traffic)

    def test_unknown_towers_are_ignored(self, daily_batches):
        matrix = aggregate_batches(daily_batches[:1], WINDOW, TOWER_IDS)
        before = matrix.traffic.copy()
        rng = np.random.default_rng(0)
        foreign = day_batch(rng, 0, n=100)
        foreign.tower_id = foreign.tower_id + NUM_TOWERS  # all unknown
        scatter_batch_into(matrix, foreign)
        assert np.array_equal(matrix.traffic, before)

    def test_returns_matrix_for_chaining(self):
        matrix = TowerTrafficMatrix(
            tower_ids=np.arange(3),
            traffic=np.zeros((3, WINDOW.num_slots)),
            window=WINDOW,
        )
        assert scatter_batch_into(matrix, empty_batch()) is matrix


class TestIncrementalEquivalence:
    def test_update_matches_full_refit_bit_for_bit(self, daily_batches, tmp_path):
        config = ModelConfig(num_clusters=4)
        full = TrafficPatternModel(config)
        full_result = full.fit_batches(daily_batches, WINDOW, TOWER_IDS)

        incremental = TrafficPatternModel(config)
        incremental.fit_batches(daily_batches[:-1], WINDOW, TOWER_IDS)
        bundle = incremental.save(tmp_path / "bundle")
        reloaded = TrafficPatternModel.load(bundle)
        update_result = reloaded.update(daily_batches[-1])

        assert np.array_equal(
            full_result.vectorized.raw.traffic, update_result.vectorized.raw.traffic
        )
        assert np.array_equal(
            full_result.vectorized.vectors, update_result.vectorized.vectors
        )
        assert np.array_equal(full_result.labels, update_result.labels)
        assert np.array_equal(
            full_result.clustering.dendrogram.merges,
            update_result.clustering.dendrogram.merges,
        )
        assert np.array_equal(
            full_result.frequency_features.amplitudes,
            update_result.frequency_features.amplitudes,
        )
        assert np.array_equal(
            full_result.representatives.features,
            update_result.representatives.features,
        )

    def test_per_day_update_chain_matches_full_refit(self, daily_batches):
        """Folding days in one at a time converges to the one-shot fit."""
        config = ModelConfig(num_clusters=4)
        full_result = TrafficPatternModel(config).fit_batches(
            daily_batches, WINDOW, TOWER_IDS
        )

        chained = TrafficPatternModel(config)
        chained.fit_batches(daily_batches[:2], WINDOW, TOWER_IDS)
        for batch in daily_batches[2:]:
            chained.update(batch)

        assert np.array_equal(
            full_result.vectorized.raw.traffic,
            chained.result.vectorized.raw.traffic,
        )
        assert np.array_equal(full_result.labels, chained.result.labels)

    def test_update_accepts_an_iterable_of_batches(self, daily_batches):
        config = ModelConfig(num_clusters=4)
        full_result = TrafficPatternModel(config).fit_batches(
            daily_batches, WINDOW, TOWER_IDS
        )
        model = TrafficPatternModel(config)
        model.fit_batches(daily_batches[:-2], WINDOW, TOWER_IDS)
        model.update(iter(daily_batches[-2:]))
        assert np.array_equal(
            full_result.vectorized.raw.traffic, model.result.vectorized.raw.traffic
        )

    def test_update_requires_a_fitted_model(self, daily_batches):
        with pytest.raises(RuntimeError, match="not been fitted"):
            TrafficPatternModel().update(daily_batches[0])


class TestStageReuse:
    def test_noop_update_reuses_every_fingerprinted_stage(self, daily_batches):
        model = TrafficPatternModel(ModelConfig(num_clusters=4))
        model.fit_batches(daily_batches, WINDOW, TOWER_IDS)
        before = model.result
        after = model.update(empty_batch())
        assert set(after.extras["stages_reused"]) == {
            "vectorize", "cluster", "tune", "spectral", "decompose",
        }
        assert np.array_equal(before.labels, after.labels)
        assert after.vectorized is before.vectorized  # republished, not recomputed

    def test_real_update_reruns_changed_stages(self, daily_batches):
        model = TrafficPatternModel(ModelConfig(num_clusters=4))
        model.fit_batches(daily_batches[:-1], WINDOW, TOWER_IDS)
        after = model.update(daily_batches[-1])
        assert "vectorize" not in after.extras["stages_reused"]
        assert "cluster" not in after.extras["stages_reused"]

    def test_fingerprints_recorded_on_plain_fit(self, daily_batches):
        model = TrafficPatternModel(ModelConfig(num_clusters=4))
        result = model.fit_batches(daily_batches, WINDOW, TOWER_IDS)
        fingerprints = result.extras["stage_fingerprints"]
        assert {"vectorize", "cluster", "tune", "spectral", "decompose"} <= set(
            fingerprints
        )
        assert all(len(digest) == 64 for digest in fingerprints.values())


class TestUpdateWithLabelling:
    @pytest.fixture(scope="class")
    def labelled_model(self):
        scenario = generate_scenario(
            ScenarioConfig(num_towers=50, num_users=80, num_days=7, seed=9)
        )
        model = TrafficPatternModel(ModelConfig(max_clusters=8))
        model.fit(scenario.traffic, city=scenario.city)
        return model, scenario

    def test_update_without_city_keeps_labelling(self, labelled_model, tmp_path):
        """POI geography is static: updates re-label without the city."""
        model, scenario = labelled_model
        bundle = model.save(tmp_path / "bundle")
        reloaded = TrafficPatternModel.load(bundle)

        rng = np.random.default_rng(5)
        new_day = day_batch(rng, day=3, n=2000, num_towers=50)
        result = reloaded.update(new_day)
        assert result.labeling is not None
        assert result.poi_profile is not None
        assert np.array_equal(
            result.poi_profile.counts, model.result.poi_profile.counts
        )
        assert set(result.labeling.as_dict().values())  # labelled clusters exist
        # queries still work end to end
        tower = int(result.tower_ids[0])
        assert reloaded.predict_region(tower) is not None

    def test_noop_update_without_city_reuses_label_stage_second_time(
        self, labelled_model, tmp_path
    ):
        model, _ = labelled_model
        bundle = model.save(tmp_path / "bundle")
        reloaded = TrafficPatternModel.load(bundle)
        first = reloaded.update(empty_batch())
        # The first no-op update re-labels from the prior POI profile and
        # records the label fingerprint; a second no-op update reuses it.
        assert "label" not in first.extras["stages_reused"]
        assert first.labeling is not None
        second = reloaded.update(empty_batch())
        assert "label" in second.extras["stages_reused"]
        assert second.labeling.as_dict() == model.result.labeling.as_dict()

    def test_update_with_city_recomputes_poi_profiles(self, labelled_model):
        model, scenario = labelled_model
        expected = model.result.labeling.as_dict()
        result = model.update(empty_batch(), city=scenario.city)
        assert result.labeling is not None
        assert "label" not in result.extras["stages_reused"]
        assert result.labeling.as_dict() == expected


class TestUpdateStats:
    def test_counts_seen_and_folded_records(self, daily_batches):
        model = TrafficPatternModel(ModelConfig(num_clusters=4))
        model.fit_batches(daily_batches[:-1], WINDOW, TOWER_IDS)
        result = model.update(daily_batches[-1])
        stats = result.extras["update_stats"]
        assert stats["records_seen"] == len(daily_batches[-1])
        assert stats["records_folded"] == len(daily_batches[-1])

    def test_out_of_window_records_fold_nothing(self, daily_batches):
        model = TrafficPatternModel(ModelConfig(num_clusters=4))
        model.fit_batches(daily_batches, WINDOW, TOWER_IDS)
        before = model.result.vectorized.raw.traffic.copy()
        n = 30
        starts = np.full(n, WINDOW.num_seconds + 100.0)
        late = RecordBatch(
            user_id=np.arange(n),
            tower_id=np.zeros(n, dtype=np.int64),
            start_s=starts,
            end_s=starts + 60.0,
            bytes_used=np.full(n, 1000.0),
            network=np.zeros(n, dtype=np.uint8),
        )
        result = model.update(late)
        stats = result.extras["update_stats"]
        assert stats["records_seen"] == n
        assert stats["records_folded"] == 0
        assert np.array_equal(result.vectorized.raw.traffic, before)

    def test_unknown_tower_records_not_counted_as_folded(self, daily_batches):
        model = TrafficPatternModel(ModelConfig(num_clusters=4))
        model.fit_batches(daily_batches, WINDOW, TOWER_IDS)
        rng = np.random.default_rng(1)
        foreign = day_batch(rng, 0, n=20)
        foreign.tower_id = foreign.tower_id + NUM_TOWERS
        result = model.update(foreign)
        assert result.extras["update_stats"]["records_folded"] == 0
