"""Tests for the geo package (POI profiles, TF-IDF, labelling, grids, validation)."""

import numpy as np
import pytest

from repro.geo.grid import cluster_density_maps, densest_point_of_cluster, towers_in_cell
from repro.geo.labeling import label_accuracy, label_clusters
from repro.geo.poi_profile import POIProfile, compute_poi_profiles, normalized_poi_by_cluster, poi_share_by_cluster
from repro.geo.tfidf import compute_ntf_idf, compute_tf_idf, ntf_idf_of_towers
from repro.geo.validation import macro_validation_table, validate_case_study
from repro.synth.poi import POI, POICategory
from repro.synth.regions import RegionType
from repro.utils.geometry import GridSpec


@pytest.fixture(scope="module")
def poi_profile(scenario):
    lats, lons = scenario.city.tower_coordinates()
    return compute_poi_profiles(
        scenario.traffic.tower_ids, lats, lons, scenario.city.pois, radius_km=0.2
    )


class TestPOIProfile:
    def test_shape(self, scenario, poi_profile):
        assert poi_profile.counts.shape == (scenario.city.num_towers, 4)
        assert poi_profile.num_towers == scenario.city.num_towers

    def test_counts_non_negative(self, poi_profile):
        assert np.all(poi_profile.counts >= 0)

    def test_counts_of_and_dominant(self, scenario, poi_profile):
        tower_id = int(scenario.traffic.tower_ids[0])
        counts = poi_profile.counts_of(tower_id)
        assert set(counts) == set(POICategory.ordered())
        dominant = poi_profile.dominant_category(tower_id)
        assert counts[dominant] == max(counts.values())

    def test_unknown_tower_rejected(self, poi_profile):
        with pytest.raises(KeyError):
            poi_profile.row_of(10**6)

    def test_manual_radius_counting(self):
        pois = [
            POI(poi_id=0, category=POICategory.OFFICE, lat=31.2001, lon=121.5001, region_id=0),
            POI(poi_id=1, category=POICategory.OFFICE, lat=31.5, lon=121.9, region_id=0),
            POI(poi_id=2, category=POICategory.RESIDENT, lat=31.2, lon=121.5, region_id=0),
        ]
        profile = compute_poi_profiles(
            np.array([7]), np.array([31.2]), np.array([121.5]), pois, radius_km=0.2
        )
        counts = profile.counts_of(7)
        assert counts[POICategory.OFFICE] == 1  # only the nearby office POI
        assert counts[POICategory.RESIDENT] == 1

    def test_towers_dominated_by_their_region_category(self, scenario, poi_profile):
        truth = scenario.ground_truth_labels()
        expected_category = {0: 0, 1: 1, 2: 2, 3: 3}  # pure region index → POI column
        hits, total = 0, 0
        for row in range(scenario.city.num_towers):
            if truth[row] == RegionType.COMPREHENSIVE.index:
                continue
            if poi_profile.counts[row].sum() < 10:
                continue
            total += 1
            if int(np.argmax(poi_profile.counts[row])) == expected_category[truth[row]]:
                hits += 1
        assert total > 0
        assert hits / total > 0.7

    def test_invalid_inputs(self, scenario):
        lats, lons = scenario.city.tower_coordinates()
        with pytest.raises(ValueError):
            compute_poi_profiles(
                scenario.traffic.tower_ids[:-1], lats, lons, scenario.city.pois
            )
        with pytest.raises(ValueError):
            compute_poi_profiles(
                scenario.traffic.tower_ids, lats, lons, scenario.city.pois, radius_km=0.0
            )


class TestNormalizedPOITables:
    def test_table_shape_and_range(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        table = normalized_poi_by_cluster(poi_profile, labels)
        assert table.shape == (5, 4)
        assert np.all(table >= 0) and np.all(table <= 1.0)

    def test_dominant_entries_match_pure_clusters(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        table = normalized_poi_by_cluster(poi_profile, labels)
        # Pure cluster i (ground truth) should have its largest column at i.
        for region_index in range(4):
            assert int(np.argmax(table[region_index])) == region_index

    def test_share_rows_sum_to_one(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        shares = poi_share_by_cluster(poi_profile, labels)
        assert np.allclose(shares.sum(axis=1), 1.0)


class TestTfIdf:
    def test_tf_idf_non_negative(self, poi_profile):
        assert np.all(compute_tf_idf(poi_profile) >= 0)

    def test_ntf_idf_rows_sum_to_one_or_zero(self, poi_profile):
        ntf = compute_ntf_idf(poi_profile)
        sums = ntf.sum(axis=1)
        assert np.all((np.isclose(sums, 1.0)) | (np.isclose(sums, 0.0)))

    def test_ubiquitous_type_gets_zero_idf(self):
        counts = np.array([[5.0, 1.0], [3.0, 0.0], [10.0, 0.0]])
        counts = np.hstack([counts, np.zeros((3, 2))])
        profile = POIProfile(tower_ids=np.arange(3), counts=counts, radius_km=0.2)
        tf_idf = compute_tf_idf(profile)
        assert np.all(tf_idf[:, 0] == 0.0)  # type 0 appears at every tower
        assert tf_idf[0, 1] > 0.0

    def test_ntf_idf_of_towers_order(self, scenario, poi_profile):
        ids = scenario.traffic.tower_ids[[3, 1]]
        rows = ntf_idf_of_towers(poi_profile, ids)
        full = compute_ntf_idf(poi_profile)
        assert np.array_equal(rows[0], full[3])
        assert np.array_equal(rows[1], full[1])


class TestLabeling:
    def test_ground_truth_clusters_labelled_correctly(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        labeling = label_clusters(poi_profile, labels)
        assert labeling.region_of(0) is RegionType.RESIDENT
        assert labeling.region_of(1) is RegionType.TRANSPORT
        assert labeling.region_of(2) is RegionType.OFFICE
        assert labeling.region_of(3) is RegionType.ENTERTAINMENT
        assert labeling.region_of(4) is RegionType.COMPREHENSIVE

    def test_label_accuracy_is_perfect_on_ground_truth(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        labeling = label_clusters(poi_profile, labels)
        assert label_accuracy(labeling, labels, labels) == 1.0

    def test_cluster_of_region_round_trip(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        labeling = label_clusters(poi_profile, labels)
        for region in RegionType.ordered():
            cluster = labeling.cluster_of(region)
            assert labeling.region_of(cluster) is region

    def test_per_tower_regions(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        labeling = label_clusters(poi_profile, labels)
        regions = labeling.per_tower_regions(labels[:10])
        assert len(regions) == 10
        assert all(isinstance(r, RegionType) for r in regions)

    def test_unknown_cluster_raises(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        labeling = label_clusters(poi_profile, labels)
        with pytest.raises(KeyError):
            labeling.region_of(99)

    def test_four_cluster_labelling_has_no_forced_comprehensive(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels().copy()
        # Merge comprehensive into resident to simulate a 4-cluster cut.
        labels[labels == 4] = 0
        labeling = label_clusters(poi_profile, labels)
        regions = set(labeling.region_types)
        assert len(regions) == 4


class TestGrids:
    def test_density_maps_cover_all_towers(self, scenario):
        lats, lons = scenario.city.tower_coordinates()
        labels = scenario.ground_truth_labels()
        maps = cluster_density_maps(lats, lons, labels)
        total = sum(m.sum() for m in maps.values())
        assert total == scenario.city.num_towers

    def test_densest_point_inside_bounding_box(self, scenario):
        lats, lons = scenario.city.tower_coordinates()
        labels = scenario.ground_truth_labels()
        lat, lon = densest_point_of_cluster(lats, lons, labels, RegionType.OFFICE.index)
        assert lats.min() <= lat <= lats.max()
        assert lons.min() <= lon <= lons.max()

    def test_densest_point_missing_cluster(self, scenario):
        lats, lons = scenario.city.tower_coordinates()
        labels = scenario.ground_truth_labels()
        with pytest.raises(ValueError):
            densest_point_of_cluster(lats, lons, labels, 77)

    def test_towers_in_cell(self, scenario):
        lats, lons = scenario.city.tower_coordinates()
        grid = GridSpec.from_points(lats, lons, num_rows=5, num_cols=5)
        all_found = sum(
            towers_in_cell(lats, lons, grid, r, c).size
            for r in range(5)
            for c in range(5)
        )
        assert all_found == scenario.city.num_towers


class TestValidation:
    def test_case_study_agreement_on_ground_truth(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        labeling = label_clusters(poi_profile, labels)
        lats, lons = scenario.city.tower_coordinates()
        result = validate_case_study(
            labeling,
            labels,
            labels,
            lats,
            lons,
            lat_range=(float(lats.min()), float(lats.max())),
            lon_range=(float(lons.min()), float(lons.max())),
        )
        assert result.num_towers == scenario.city.num_towers
        assert result.agreement == 1.0

    def test_case_study_empty_window(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        labeling = label_clusters(poi_profile, labels)
        lats, lons = scenario.city.tower_coordinates()
        result = validate_case_study(
            labeling, labels, labels, lats, lons,
            lat_range=(0.0, 0.1), lon_range=(0.0, 0.1),
        )
        assert result.num_towers == 0
        assert result.agreement == 1.0

    def test_macro_validation_consistent(self, scenario, poi_profile):
        labels = scenario.ground_truth_labels()
        labeling = label_clusters(poi_profile, labels)
        table = macro_validation_table(labeling, poi_profile, labels)
        assert set(table) == {0, 1, 2, 3, 4}
        assert all(entry["consistent"] for entry in table.values())
