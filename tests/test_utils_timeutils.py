"""Tests for repro.utils.timeutils."""

import numpy as np
import pytest

from repro.utils.timeutils import (
    SECONDS_PER_DAY,
    SLOT_SECONDS,
    SLOTS_PER_DAY,
    SLOTS_PER_WEEK,
    TimeWindow,
    day_index,
    format_slot_of_day,
    is_weekend_day,
    slot_index,
    slot_of_day,
    slot_to_time_of_day,
    weekday_weekend_masks,
)


class TestConstants:
    def test_slots_per_day(self):
        assert SLOTS_PER_DAY == 144

    def test_slots_per_week(self):
        assert SLOTS_PER_WEEK == 1008

    def test_seconds_per_day_consistent(self):
        assert SLOTS_PER_DAY * SLOT_SECONDS == SECONDS_PER_DAY


class TestTimeWindow:
    def test_paper_window_has_4032_slots(self):
        assert TimeWindow(num_days=28).num_slots == 4032

    def test_num_weeks(self):
        assert TimeWindow(num_days=28).num_weeks == pytest.approx(4.0)

    def test_invalid_num_days(self):
        with pytest.raises(ValueError):
            TimeWindow(num_days=0)

    def test_invalid_start_weekday(self):
        with pytest.raises(ValueError):
            TimeWindow(num_days=7, start_weekday=7)

    def test_weekday_of_day_starts_monday(self):
        window = TimeWindow(num_days=7)
        assert window.weekday_of_day(0) == 0
        assert window.weekday_of_day(5) == 5
        assert window.weekday_of_day(6) == 6

    def test_weekday_of_day_with_offset_start(self):
        window = TimeWindow(num_days=7, start_weekday=5)
        assert window.weekday_of_day(0) == 5
        assert window.weekday_of_day(2) == 0

    def test_weekday_of_day_out_of_range(self):
        with pytest.raises(ValueError):
            TimeWindow(num_days=7).weekday_of_day(7)

    def test_is_weekend(self):
        window = TimeWindow(num_days=7)
        assert not window.is_weekend(0)
        assert window.is_weekend(5)
        assert window.is_weekend(6)

    def test_weekend_and_weekday_days_partition(self):
        window = TimeWindow(num_days=14)
        assert sorted(window.weekend_days() + window.weekday_days()) == list(range(14))

    def test_two_weeks_have_four_weekend_days(self):
        assert len(TimeWindow(num_days=14).weekend_days()) == 4

    def test_slots_of_day_shape_and_range(self):
        window = TimeWindow(num_days=3)
        slots = window.slots_of_day(1)
        assert slots.shape == (SLOTS_PER_DAY,)
        assert slots[0] == SLOTS_PER_DAY
        assert slots[-1] == 2 * SLOTS_PER_DAY - 1

    def test_slots_of_day_out_of_range(self):
        with pytest.raises(ValueError):
            TimeWindow(num_days=3).slots_of_day(3)

    def test_iter_days_covers_all_slots(self):
        window = TimeWindow(num_days=5)
        seen = np.concatenate([slots for _, slots in window.iter_days()])
        assert np.array_equal(seen, np.arange(window.num_slots))

    def test_weekday_weekend_slot_masks_are_complementary(self):
        window = TimeWindow(num_days=14)
        weekday_mask, weekend_mask = window.weekday_weekend_slot_masks()
        assert np.all(weekday_mask ^ weekend_mask)
        assert weekend_mask.sum() == 4 * SLOTS_PER_DAY


class TestSlotHelpers:
    def test_slot_index_at_boundaries(self):
        assert slot_index(0) == 0
        assert slot_index(599.9) == 0
        assert slot_index(600) == 1

    def test_slot_index_negative_rejected(self):
        with pytest.raises(ValueError):
            slot_index(-1)

    def test_day_index(self):
        assert day_index(0) == 0
        assert day_index(SECONDS_PER_DAY - 1) == 0
        assert day_index(SECONDS_PER_DAY) == 1

    def test_day_index_negative_rejected(self):
        with pytest.raises(ValueError):
            day_index(-0.1)

    def test_slot_of_day_wraps(self):
        assert slot_of_day(0) == 0
        assert slot_of_day(SLOTS_PER_DAY) == 0
        assert slot_of_day(SLOTS_PER_DAY + 3) == 3

    def test_slot_of_day_negative_rejected(self):
        with pytest.raises(ValueError):
            slot_of_day(-1)

    def test_slot_to_time_of_day(self):
        assert slot_to_time_of_day(0) == (0, 0)
        assert slot_to_time_of_day(6) == (1, 0)
        assert slot_to_time_of_day(131) == (21, 50)

    def test_format_slot_of_day(self):
        assert format_slot_of_day(0) == "00:00"
        assert format_slot_of_day(129) == "21:30"
        assert format_slot_of_day(48) == "08:00"

    def test_is_weekend_day(self):
        assert not is_weekend_day(0)
        assert is_weekend_day(5)
        assert is_weekend_day(12)
        assert not is_weekend_day(7)

    def test_weekday_weekend_masks_function(self):
        weekday_mask, weekend_mask = weekday_weekend_masks(7)
        assert weekday_mask.sum() == 5 * SLOTS_PER_DAY
        assert weekend_mask.sum() == 2 * SLOTS_PER_DAY
