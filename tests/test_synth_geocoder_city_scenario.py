"""Tests for repro.synth.geocoder, repro.synth.city and repro.synth.scenario."""

import numpy as np
import pytest

from repro.synth.city import CityConfig, build_city
from repro.synth.geocoder import GeocodingError, SyntheticGeocoder
from repro.synth.regions import RegionType
from repro.synth.scenario import ScenarioConfig, generate_scenario
from repro.synth.towers import TowerPlacementConfig
from repro.utils.geometry import GridSpec


@pytest.fixture(scope="module")
def city():
    return build_city(CityConfig(towers=TowerPlacementConfig(num_towers=100), seed=5))


class TestGeocoder:
    def test_from_towers_resolves_every_address(self, city):
        geocoder = SyntheticGeocoder.from_towers(city.towers)
        tower = city.towers[0]
        result = geocoder.geocode(tower.address)
        assert result.lat == tower.lat
        assert result.lon == tower.lon

    def test_unknown_address_raises(self, city):
        geocoder = SyntheticGeocoder.from_towers(city.towers)
        with pytest.raises(GeocodingError):
            geocoder.geocode("Nowhere Street 1")

    def test_cache_prevents_repeat_lookups(self, city):
        geocoder = SyntheticGeocoder.from_towers(city.towers)
        address = city.towers[0].address
        geocoder.geocode(address)
        geocoder.geocode(address)
        assert geocoder.lookup_count == 1
        assert geocoder.cache_hits == 1

    def test_transient_failures_and_retries(self, city):
        geocoder = SyntheticGeocoder.from_towers(city.towers, failure_rate=0.99, rng=1)
        address = city.towers[1].address
        # A single call will almost surely fail...
        with pytest.raises(GeocodingError):
            for _ in range(5):
                geocoder.geocode(address)
        # ...but retries eventually succeed (or exhaust attempts cleanly).
        resolved = None
        for _ in range(50):
            try:
                resolved = geocoder.geocode_with_retries(address, max_attempts=10)
                break
            except GeocodingError:
                continue
        assert resolved is not None

    def test_retry_of_unknown_address_fails_fast(self, city):
        geocoder = SyntheticGeocoder.from_towers(city.towers)
        with pytest.raises(GeocodingError):
            geocoder.geocode_with_retries("Unknown 42", max_attempts=3)

    def test_contains_and_len(self, city):
        geocoder = SyntheticGeocoder.from_towers(city.towers)
        assert len(geocoder) == len({t.address for t in city.towers})
        assert city.towers[0].address in geocoder

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            SyntheticGeocoder({}, failure_rate=2.0)


class TestCityModel:
    def test_counts(self, city):
        assert city.num_towers == 100
        assert city.num_regions > 0
        assert city.num_pois > 0

    def test_tower_and_region_lookup(self, city):
        tower = city.towers[5]
        assert city.tower(tower.tower_id) is tower
        assert city.region_of_tower(tower.tower_id).region_id == tower.region_id

    def test_unknown_ids_raise(self, city):
        with pytest.raises(KeyError):
            city.tower(99_999)
        with pytest.raises(KeyError):
            city.region(99_999)

    def test_ground_truth_labels_align(self, city):
        labels = city.ground_truth_labels()
        assert labels.shape == (city.num_towers,)
        assert labels[5] == city.towers[5].region_type.index

    def test_towers_of_type(self, city):
        offices = city.towers_of_type(RegionType.OFFICE)
        assert all(t.region_type is RegionType.OFFICE for t in offices)

    def test_type_fractions_sum_to_one(self, city):
        fractions = city.type_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_default_grid_covers_towers(self, city):
        grid = city.default_grid()
        assert isinstance(grid, GridSpec)
        lats, lons = city.tower_coordinates()
        counts = grid.accumulate(lats, lons)
        assert counts.sum() == city.num_towers

    def test_deterministic_given_seed(self):
        a = build_city(CityConfig(towers=TowerPlacementConfig(num_towers=30), seed=9))
        b = build_city(CityConfig(towers=TowerPlacementConfig(num_towers=30), seed=9))
        assert [t.lat for t in a.towers] == [t.lat for t in b.towers]


class TestScenario:
    def test_scenario_shapes(self, scenario):
        assert scenario.city.num_towers == scenario.traffic.num_towers == 90
        assert len(scenario.users) == 400
        assert scenario.window.num_days == 14

    def test_ground_truth_alignment(self, scenario):
        labels = scenario.ground_truth_labels()
        assert labels.shape == (scenario.traffic.num_towers,)
        for row in range(0, scenario.traffic.num_towers, 17):
            tower_id = int(scenario.traffic.tower_ids[row])
            assert labels[row] == scenario.city.tower(tower_id).region_type.index

    def test_profile_only_scenario_has_no_records(self, scenario):
        assert scenario.records == []
        assert scenario.corruption_report is None

    def test_session_scenario_has_records_and_report(self, session_scenario):
        assert len(session_scenario.records) > 0
        assert session_scenario.corruption_report is not None
        assert session_scenario.corruption_report.num_output_records == len(
            session_scenario.records
        )

    def test_scenario_reproducible(self):
        a = generate_scenario(ScenarioConfig(num_towers=20, num_users=50, num_days=7, seed=4))
        b = generate_scenario(ScenarioConfig(num_towers=20, num_users=50, num_days=7, seed=4))
        assert np.array_equal(a.traffic.traffic, b.traffic.traffic)

    def test_all_five_types_present(self, scenario):
        assert set(np.unique(scenario.ground_truth_labels()).tolist()) == {0, 1, 2, 3, 4}
