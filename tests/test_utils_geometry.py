"""Tests for repro.utils.geometry."""

import numpy as np
import pytest

from repro.utils.geometry import (
    GridSpec,
    bounding_box,
    haversine_km,
    latlon_to_xy_km,
    points_within_radius_km,
)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(31.2, 121.5, 31.2, 121.5) == pytest.approx(0.0)

    def test_one_degree_latitude_is_about_111km(self):
        assert haversine_km(0.0, 0.0, 1.0, 0.0) == pytest.approx(111.19, rel=0.01)

    def test_symmetry(self):
        d1 = haversine_km(31.0, 121.0, 31.3, 121.6)
        d2 = haversine_km(31.3, 121.6, 31.0, 121.0)
        assert d1 == pytest.approx(d2)

    def test_vectorised_matches_scalar(self):
        lats = np.array([31.1, 31.2])
        lons = np.array([121.4, 121.5])
        distances = haversine_km(31.0, 121.0, lats, lons)
        for i in range(2):
            assert distances[i] == pytest.approx(
                haversine_km(31.0, 121.0, float(lats[i]), float(lons[i]))
            )


class TestProjection:
    def test_origin_maps_to_zero(self):
        x, y = latlon_to_xy_km(31.2, 121.5, origin_lat=31.2, origin_lon=121.5)
        assert x == pytest.approx(0.0)
        assert y == pytest.approx(0.0)

    def test_projection_close_to_haversine(self):
        x, y = latlon_to_xy_km(31.25, 121.55, origin_lat=31.2, origin_lon=121.5)
        planar = np.hypot(x, y)
        true = haversine_km(31.2, 121.5, 31.25, 121.55)
        assert planar == pytest.approx(true, rel=0.01)


class TestBoundingBox:
    def test_values(self):
        lats = np.array([31.0, 31.5, 31.2])
        lons = np.array([121.1, 121.9, 121.4])
        assert bounding_box(lats, lons) == (31.0, 31.5, 121.1, 121.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_box(np.array([]), np.array([]))


class TestPointsWithinRadius:
    def test_finds_close_points_only(self):
        lats = np.array([31.2, 31.2005, 31.5])
        lons = np.array([121.5, 121.5005, 121.9])
        close = points_within_radius_km(31.2, 121.5, lats, lons, 0.2)
        assert set(close.tolist()) == {0, 1}

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            points_within_radius_km(0, 0, np.array([0.0]), np.array([0.0]), -1.0)


class TestGridSpec:
    def make_grid(self) -> GridSpec:
        return GridSpec(
            lat_min=31.0, lat_max=31.4, lon_min=121.2, lon_max=121.8, num_rows=4, num_cols=6
        )

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(31.4, 31.0, 121.2, 121.8, 4, 6)
        with pytest.raises(ValueError):
            GridSpec(31.0, 31.4, 121.2, 121.8, 0, 6)

    def test_cell_sizes(self):
        grid = self.make_grid()
        assert grid.cell_height_deg == pytest.approx(0.1)
        assert grid.cell_width_deg == pytest.approx(0.1)

    def test_cell_area_positive(self):
        assert self.make_grid().cell_area_km2() > 0

    def test_cell_of_corners(self):
        grid = self.make_grid()
        assert grid.cell_of(31.0, 121.2) == (0, 0)
        assert grid.cell_of(31.4, 121.8) == (3, 5)  # clamped into last cell

    def test_cell_of_out_of_bounds(self):
        with pytest.raises(ValueError):
            self.make_grid().cell_of(30.0, 121.5)

    def test_cells_of_vectorised_matches_scalar(self):
        grid = self.make_grid()
        lats = np.array([31.05, 31.35])
        lons = np.array([121.25, 121.75])
        rows, cols = grid.cells_of(lats, lons)
        for i in range(2):
            assert (rows[i], cols[i]) == grid.cell_of(float(lats[i]), float(lons[i]))

    def test_accumulate_counts(self):
        grid = self.make_grid()
        lats = np.array([31.05, 31.05, 31.35])
        lons = np.array([121.25, 121.25, 121.75])
        counts = grid.accumulate(lats, lons)
        assert counts.sum() == 3
        assert counts[0, 0] == 2

    def test_accumulate_with_weights(self):
        grid = self.make_grid()
        counts = grid.accumulate(np.array([31.05]), np.array([121.25]), np.array([5.0]))
        assert counts[0, 0] == 5.0

    def test_accumulate_weight_shape_mismatch(self):
        grid = self.make_grid()
        with pytest.raises(ValueError):
            grid.accumulate(np.array([31.05]), np.array([121.25]), np.array([1.0, 2.0]))

    def test_from_points_covers_all(self):
        lats = np.random.default_rng(0).uniform(31.0, 31.4, size=50)
        lons = np.random.default_rng(1).uniform(121.2, 121.8, size=50)
        grid = GridSpec.from_points(lats, lons, num_rows=10, num_cols=10)
        counts = grid.accumulate(lats, lons)
        assert counts.sum() == 50
