"""Tests for repro.synth.towers."""

import numpy as np
import pytest

from repro.synth.regions import RegionType, generate_regions
from repro.synth.towers import (
    TowerPlacementConfig,
    ground_truth_labels,
    place_towers,
    tower_coordinate_arrays,
    towers_by_type,
)


@pytest.fixture(scope="module")
def regions():
    return generate_regions(rng=6)


@pytest.fixture(scope="module")
def towers(regions):
    return place_towers(regions, TowerPlacementConfig(num_towers=200), rng=6)


class TestPlacement:
    def test_requested_count(self, towers):
        assert len(towers) == 200

    def test_unique_sequential_ids(self, towers):
        assert [tower.tower_id for tower in towers] == list(range(200))

    def test_towers_inside_their_region(self, regions, towers):
        by_id = {region.region_id: region for region in regions}
        for tower in towers:
            assert by_id[tower.region_id].contains(tower.lat, tower.lon)

    def test_tower_type_matches_region_type(self, regions, towers):
        by_id = {region.region_id: region for region in regions}
        for tower in towers:
            assert tower.region_type is by_id[tower.region_id].region_type

    def test_every_type_has_a_tower(self, towers):
        groups = towers_by_type(towers)
        for region_type in RegionType.ordered():
            assert len(groups[region_type]) >= 1

    def test_positive_amplitudes(self, towers):
        assert all(tower.mean_amplitude > 0 for tower in towers)

    def test_addresses_unique(self, towers):
        addresses = [tower.address for tower in towers]
        assert len(addresses) == len(set(addresses))

    def test_reproducible(self, regions):
        a = place_towers(regions, TowerPlacementConfig(num_towers=50), rng=3)
        b = place_towers(regions, TowerPlacementConfig(num_towers=50), rng=3)
        assert [t.lat for t in a] == [t.lat for t in b]

    def test_empty_regions_rejected(self):
        with pytest.raises(ValueError):
            place_towers([], rng=0)

    def test_office_proportion_is_largest(self, towers):
        labels = ground_truth_labels(towers)
        counts = np.bincount(labels, minlength=5)
        assert np.argmax(counts) == RegionType.OFFICE.index

    def test_resident_amplitude_larger_than_transport_on_average(self, towers):
        groups = towers_by_type(towers)
        resident = np.mean([t.mean_amplitude for t in groups[RegionType.RESIDENT]])
        transport = np.mean([t.mean_amplitude for t in groups[RegionType.TRANSPORT]])
        assert resident > transport


class TestHelpers:
    def test_coordinate_arrays(self, towers):
        lats, lons = tower_coordinate_arrays(towers)
        assert lats.shape == lons.shape == (len(towers),)

    def test_ground_truth_labels_range(self, towers):
        labels = ground_truth_labels(towers)
        assert labels.min() >= 0 and labels.max() <= 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TowerPlacementConfig(num_towers=0)
        with pytest.raises(ValueError):
            TowerPlacementConfig(amplitude_lognormal_sigma=0.0)
