#!/usr/bin/env python3
"""Tower-load prediction — "choose the tower with predicted lower traffic".

The paper argues that once traffic patterns are known, users (or an
operator's traffic-steering logic) can pick the tower that will be least
loaded.  This example fits the pattern model, forecasts the next day of
traffic for every tower with the pattern-aware predictor, and then simulates
a simple steering decision: for pairs of nearby towers, pick the one with the
lower predicted load at each hour and measure how often that choice is
correct against the actual traffic.

Run with::

    python examples/tower_load_prediction.py
"""

import numpy as np

from repro import ModelConfig, ScenarioConfig, TrafficPatternModel, generate_scenario
from repro.analysis.temporal import weekly_profile
from repro.predict.evaluate import evaluate_forecast
from repro.predict.pattern import PatternPredictor
from repro.utils.geometry import haversine_km
from repro.utils.timeutils import SLOTS_PER_DAY
from repro.viz.tables import format_table


def main() -> None:
    print("Generating the city and fitting the pattern model...")
    scenario = generate_scenario(
        ScenarioConfig(num_towers=200, num_users=1_000, num_days=28, seed=33)
    )
    model = TrafficPatternModel(ModelConfig(max_clusters=10))
    result = model.fit(scenario.traffic, city=scenario.city)
    window = result.window

    horizon = SLOTS_PER_DAY
    train_slots = window.num_slots - horizon

    # Forecast every tower's final day from its first 27 days.
    print("Forecasting the final day for every tower (pattern-aware predictor)...")
    cluster_profiles = {
        cluster: weekly_profile(result.cluster_aggregate(cluster), window)
        for cluster in range(result.num_clusters)
    }
    forecasts = np.zeros((result.vectorized.num_towers, horizon))
    actuals = np.zeros_like(forecasts)
    per_pattern_error: dict[str, list[float]] = {}
    for row in range(result.vectorized.num_towers):
        series = result.vectorized.raw.traffic[row]
        cluster = int(result.labels[row])
        predictor = PatternPredictor(cluster_profiles[cluster]).fit(series[:train_slots])
        forecasts[row] = predictor.predict(horizon)
        actuals[row] = series[train_slots:]
        region = result.region_of_cluster(cluster).value
        per_pattern_error.setdefault(region, []).append(
            evaluate_forecast(actuals[row], forecasts[row]).smape
        )

    print("\nOne-day-ahead forecast error (sMAPE) per pattern:")
    print(
        format_table(
            ["pattern", "towers", "mean sMAPE"],
            [
                [region, len(errors), float(np.mean(errors))]
                for region, errors in sorted(per_pattern_error.items())
            ],
        )
    )

    # Traffic steering between nearby tower pairs.
    lats, lons = scenario.city.tower_coordinates()
    rng = np.random.default_rng(1)
    pairs = []
    for _ in range(300):
        a = int(rng.integers(0, result.vectorized.num_towers))
        distances = haversine_km(lats[a], lons[a], lats, lons)
        nearby = np.nonzero((np.asarray(distances) < 3.0) & (np.arange(len(lats)) != a))[0]
        if nearby.size:
            pairs.append((a, int(rng.choice(nearby))))

    correct = 0
    total = 0
    for a, b in pairs:
        for hour in range(0, horizon, 6):  # one decision per hour
            predicted_choice = a if forecasts[a, hour] <= forecasts[b, hour] else b
            actual_choice = a if actuals[a, hour] <= actuals[b, hour] else b
            correct += predicted_choice == actual_choice
            total += 1
    print(
        f"\nTraffic steering between {len(pairs)} nearby tower pairs: the predicted "
        f"less-loaded tower was actually less loaded in {correct / total:.1%} of hourly decisions."
    )
    print("(A random choice would be right 50% of the time.)")


if __name__ == "__main__":
    main()
