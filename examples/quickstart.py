#!/usr/bin/env python3
"""Quickstart: generate a synthetic city, fit the traffic-pattern model, and
inspect the five identified patterns.

Run with::

    python examples/quickstart.py
"""

from repro import ModelConfig, ScenarioConfig, TrafficPatternModel, generate_scenario
from repro.geo.labeling import label_accuracy
from repro.synth.regions import RegionType
from repro.viz.ascii import sparkline
from repro.viz.tables import format_table


def main() -> None:
    # 1. Generate a synthetic urban scenario (stand-in for the operator trace).
    print("Generating a synthetic city (200 towers, 28 days)...")
    scenario = generate_scenario(
        ScenarioConfig(num_towers=200, num_users=1_000, num_days=28, seed=42)
    )

    # 2. Fit the paper's three-dimensional traffic-pattern model.  The fit is
    #    a staged pipeline; each stage's wall-clock time is recorded.
    print("Fitting the traffic-pattern model (vectorize → cluster → tune → label)...")
    model = TrafficPatternModel(ModelConfig(max_clusters=10))
    result = model.fit(scenario.traffic, city=scenario.city)
    timings = result.extras["stage_timings"]
    print(
        "Pipeline stages: "
        + ", ".join(f"{name} {seconds * 1000:.0f} ms" for name, seconds in timings.items())
    )

    # 3. The headline result: five time-domain patterns (Table 1).
    print(f"\nIdentified {result.num_clusters} traffic patterns:")
    print(
        format_table(
            ["cluster", "functional region", "towers", "%"],
            [
                [s.cluster_label + 1, s.region.value, s.num_towers, round(s.percentage, 2)]
                for s in result.summaries()
            ],
        )
    )

    # 4. How well do the patterns recover the ground-truth land use?
    accuracy = label_accuracy(result.labeling, result.labels, scenario.ground_truth_labels())
    print(f"\nLand-use recovery accuracy vs ground truth: {accuracy:.1%}")

    # 5. Each pattern has a distinctive weekly shape.
    print("\nCentroid profiles (first week, one character per ~70 minutes):")
    for summary in result.summaries():
        week = summary.centroid_profile[: 7 * 144 : 7]
        print(f"  {summary.region.value:<14} {sparkline(week)}")

    # 6. Decompose a comprehensive-area tower into the four primary components.
    comprehensive = result.cluster_of_region(RegionType.COMPREHENSIVE)
    tower_id = int(result.tower_ids[result.cluster_members(comprehensive)[0]])
    decomposition = model.decompose(tower_id)
    print(f"\nConvex decomposition of comprehensive tower {tower_id}:")
    for label, coefficient in decomposition.as_dict().items():
        region = result.region_of_cluster(label)
        print(f"  {region.value:<14} {coefficient:.2f}")
    print(f"  (residual {decomposition.residual:.4f})")


if __name__ == "__main__":
    main()
