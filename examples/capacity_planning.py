#!/usr/bin/env python3
"""Pattern-aware capacity planning — the "ISP operations" use case.

The paper motivates the pattern model with network management: instead of one
city-wide strategy, an operator can provision and price per pattern.  This
example derives, per identified pattern, the quantities an operator would
actually plan with: busy-hour load, peak-to-valley swing, weekday/weekend
imbalance, and the best daily window for maintenance, and then estimates how
much capacity a pattern-aware dimensioning saves compared with dimensioning
every tower for the city-wide busy hour.

Run with::

    python examples/capacity_planning.py
"""

import numpy as np

from repro import ModelConfig, ScenarioConfig, TrafficPatternModel, generate_scenario
from repro.analysis.interrelations import average_daily_profile
from repro.analysis.peaks import find_daily_peak_valley_times
from repro.analysis.timedomain import peak_valley_features, weekday_weekend_ratio
from repro.viz.tables import format_table


def main() -> None:
    print("Generating the city and fitting the traffic-pattern model...")
    scenario = generate_scenario(
        ScenarioConfig(num_towers=250, num_users=1_000, num_days=28, seed=21)
    )
    model = TrafficPatternModel(ModelConfig(max_clusters=10))
    result = model.fit(scenario.traffic, city=scenario.city)
    window = result.window

    rows = []
    per_pattern_peak_demand = {}
    for cluster in range(result.num_clusters):
        region = result.region_of_cluster(cluster)
        aggregate = result.cluster_aggregate(cluster)
        features = peak_valley_features(aggregate, window)
        ratio = weekday_weekend_ratio(aggregate, window)
        timing = find_daily_peak_valley_times(aggregate, window)
        members = result.cluster_members(cluster)
        # Busy-hour demand per tower: the cluster's weekday peak split over
        # its towers (bytes per 10 minutes).
        busy_hour_per_tower = features.weekday_max / members.size
        per_pattern_peak_demand[cluster] = busy_hour_per_tower
        rows.append(
            [
                region.value,
                members.size,
                f"{busy_hour_per_tower:.2e}",
                f"{features.weekday_ratio:.1f}",
                f"{ratio:.2f}",
                " / ".join(timing.peak_times),
                timing.valley_time,
            ]
        )

    print("\nPer-pattern planning table:")
    print(
        format_table(
            [
                "pattern",
                "towers",
                "busy-hour bytes/10min/tower",
                "peak/valley",
                "weekday/weekend",
                "peak times",
                "maintenance window",
            ],
            rows,
        )
    )

    # Pattern-aware dimensioning vs one-size-fits-all dimensioning.
    city_aggregate = result.vectorized.raw.aggregate()
    city_profile = average_daily_profile(city_aggregate, window, normalize=False)
    city_busy_per_tower = city_profile.max() / result.vectorized.num_towers

    uniform_capacity = city_busy_per_tower * result.vectorized.num_towers
    aware_capacity = sum(
        per_pattern_peak_demand[cluster] * result.cluster_members(cluster).size
        for cluster in range(result.num_clusters)
    )
    print(
        "\nDimensioning every tower for the city-wide busy hour needs "
        f"{uniform_capacity:.3e} bytes/10min of installed capacity."
    )
    print(
        "Dimensioning each pattern for its own busy hour needs "
        f"{aware_capacity:.3e} bytes/10min."
    )
    print(f"Pattern-aware saving: {(1 - aware_capacity / uniform_capacity):.1%}")

    # Complementarity: office peaks at midday, resident in the evening — load
    # balancing across neighbouring towers of different patterns smooths the
    # combined curve.
    from repro.synth.regions import RegionType

    office = average_daily_profile(
        result.cluster_aggregate(result.cluster_of_region(RegionType.OFFICE)), window
    )
    resident = average_daily_profile(
        result.cluster_aggregate(result.cluster_of_region(RegionType.RESIDENT)), window
    )
    combined = office + resident
    print(
        "\nPeak-to-mean ratio: office alone "
        f"{office.max() / office.mean():.2f}, resident alone "
        f"{resident.max() / resident.mean():.2f}, office+resident combined "
        f"{combined.max() / combined.mean():.2f}"
    )
    print("Lower combined peak-to-mean means shared capacity is used more efficiently.")


if __name__ == "__main__":
    main()
