#!/usr/bin/env python3
"""Frequency-domain modelling: DFT of tower traffic, the three principal
components, and the convex decomposition onto four primary components.

Reproduces Section 5 of the paper on a synthetic city and exports the
per-tower frequency features and decomposition coefficients as CSV so they
can be plotted externally.

Run with::

    python examples/frequency_decomposition.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import ModelConfig, ScenarioConfig, TrafficPatternModel, generate_scenario
from repro.spectral.components import reconstruction_energy_loss
from repro.spectral.dft import amplitude_spectrum
from repro.synth.regions import RegionType
from repro.viz.ascii import ascii_line_plot
from repro.viz.export import export_rows_csv, export_series_csv


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("frequency_outputs")

    print("Generating scenario and fitting the model...")
    scenario = generate_scenario(
        ScenarioConfig(num_towers=250, num_users=1_000, num_days=28, seed=5)
    )
    model = TrafficPatternModel(ModelConfig(max_clusters=10))
    result = model.fit(scenario.traffic, city=scenario.city)

    # 1. Spectrum of the aggregate traffic and the three principal components.
    aggregate = scenario.traffic.aggregate()
    spectrum = amplitude_spectrum(aggregate)
    components = result.components
    loss = reconstruction_energy_loss(aggregate, components)
    print(f"\nPrincipal components (DFT indices): {components.labels()}")
    print(f"Energy lost when keeping only these components: {loss:.2%}")
    print(ascii_line_plot(spectrum[1:101], title="|DFT| of the aggregate traffic, k = 1..100"))

    # 2. Per-tower amplitude/phase features.
    features = result.frequency_features
    feature_rows = []
    for row in range(features.num_towers):
        cluster = int(result.labels[row])
        feature_rows.append(
            {
                "tower_id": int(features.tower_ids[row]),
                "cluster": cluster,
                "region": result.region_of_cluster(cluster).value,
                "amplitude_week": float(features.amplitude("week")[row]),
                "phase_week": float(features.phase("week")[row]),
                "amplitude_day": float(features.amplitude("day")[row]),
                "phase_day": float(features.phase("day")[row]),
                "amplitude_half_day": float(features.amplitude("half_day")[row]),
                "phase_half_day": float(features.phase("half_day")[row]),
            }
        )
    features_path = output_dir / "tower_frequency_features.csv"
    export_rows_csv(feature_rows, features_path)
    print(f"\nWrote per-tower frequency features to {features_path}")

    # 3. Convex decomposition of every tower onto the four primary components
    # — a single vectorized call over the whole (towers × features) matrix.
    batch = model.decompose_all()
    decomposition_rows = []
    for row in range(len(batch)):
        entry = {
            "tower_id": int(batch.tower_ids[row]),
            "residual": float(batch.residuals[row]),
        }
        for label in batch.component_labels:
            entry[f"coef_{result.region_of_cluster(int(label)).value}"] = float(
                batch.coefficients_for(int(label))[row]
            )
        decomposition_rows.append(entry)
    decomposition_path = output_dir / "tower_decompositions.csv"
    export_rows_csv(decomposition_rows, decomposition_path)
    print(f"Wrote convex decompositions to {decomposition_path}")

    # 4. Fig. 19-style time-domain mixture for one comprehensive tower.
    comprehensive = result.cluster_of_region(RegionType.COMPREHENSIVE)
    tower_id = int(result.tower_ids[result.cluster_members(comprehensive)[0]])
    mixture = model.decompose_in_time_domain(tower_id)
    series = {"target": mixture.target, "combined": mixture.combined}
    for label, component in zip(mixture.component_labels, mixture.component_series):
        series[result.region_of_cluster(int(label)).value] = component
    mixture_path = output_dir / f"mixture_tower_{tower_id}.csv"
    export_series_csv(series, mixture_path)
    print(f"Wrote the time-domain mixture of tower {tower_id} to {mixture_path}")
    print(f"  coefficients: { {result.region_of_cluster(k).value: round(v, 2) for k, v in mixture.component_share().items()} }")
    print(f"  approximation error: {mixture.approximation_error():.3f}")

    # 5. A quick textual summary of how the patterns separate in phase.
    print("\nMean daily phase per pattern (the commute ordering of Fig. 15(b)):")
    for cluster in range(result.num_clusters):
        members = result.cluster_members(cluster)
        phases = features.phase("day")[members]
        mean_phase = float(np.arctan2(np.mean(np.sin(phases)), np.mean(np.cos(phases))))
        print(f"  {result.region_of_cluster(cluster).value:<14} {mean_phase:+.2f} rad")


if __name__ == "__main__":
    main()
