#!/usr/bin/env python3
"""Land-use inference from traffic alone — the "government manager" use case.

The paper argues that city managers can infer land usage and human economic
activity from cellular traffic patterns.  This example deliberately *hides*
the POI layer from the classifier: it fits the pattern model without the
city, assigns functional regions to clusters using only a handful of
"surveyed" towers (a tiny labelled sample), and then measures how well the
inferred land use matches the ground truth across the whole city.

Run with::

    python examples/land_use_inference.py
"""

import numpy as np

from repro import ModelConfig, ScenarioConfig, TrafficPatternModel, generate_scenario
from repro.synth.regions import RegionType
from repro.viz.tables import format_table, render_matrix


def main() -> None:
    print("Generating the city and fitting the model WITHOUT the POI layer...")
    scenario = generate_scenario(
        ScenarioConfig(num_towers=250, num_users=1_000, num_days=28, seed=13)
    )
    model = TrafficPatternModel(ModelConfig(max_clusters=10))
    result = model.fit(scenario.traffic)  # note: no city → no POI labelling

    truth = scenario.ground_truth_labels()
    print(f"Identified {result.num_clusters} traffic patterns from traffic alone.")

    # A city surveyor labels 3 towers per cluster (a realistic ground survey);
    # each cluster adopts the majority label of its surveyed towers.
    rng = np.random.default_rng(0)
    survey_per_cluster = 3
    cluster_to_region: dict[int, int] = {}
    for cluster in range(result.num_clusters):
        members = result.cluster_members(cluster)
        surveyed = rng.choice(members, size=min(survey_per_cluster, members.size), replace=False)
        votes = np.bincount(truth[surveyed], minlength=5)
        cluster_to_region[cluster] = int(np.argmax(votes))

    predicted = np.array([cluster_to_region[int(label)] for label in result.labels])
    accuracy = float(np.mean(predicted == truth))
    print(f"\nLand-use inference accuracy with {survey_per_cluster} surveyed towers per pattern: "
          f"{accuracy:.1%}")

    # Confusion matrix between inferred and true land use.
    confusion = np.zeros((5, 5))
    for p, t in zip(predicted, truth):
        confusion[t, p] += 1
    region_names = [region.value for region in RegionType.ordered()]
    print("\nConfusion matrix (rows = ground truth, columns = inferred):")
    print(render_matrix(confusion, row_labels=region_names, column_labels=region_names,
                        float_format="{:.0f}"))

    # Which districts would a city manager flag as business districts?
    office_region = RegionType.OFFICE.index
    office_towers = np.nonzero(predicted == office_region)[0]
    lats, lons = scenario.city.tower_coordinates()
    print("\nInferred business-district towers (sample):")
    rows = []
    for row in office_towers[:8]:
        tower = scenario.city.tower(int(scenario.traffic.tower_ids[row]))
        rows.append([tower.tower_id, f"{tower.lat:.4f}", f"{tower.lon:.4f}",
                     tower.region_type.value])
    print(format_table(["tower", "lat", "lon", "true region"], rows))


if __name__ == "__main__":
    main()
