#!/usr/bin/env python3
"""Operator-trace pipeline: raw connection logs → cleaning → geocoding →
density map → traffic vectors → pattern model → persisted bundle →
incremental day-over-day update → query serving.

This example mirrors what an ISP would run on its own logs (Section 2 of the
paper): the raw trace contains duplicated and conflicting records, station
addresses without coordinates, and billions of per-connection rows.  Here the
trace is synthetic and small, but every pipeline stage is the real one —
including the production workflow of fitting once, persisting the model,
folding a fresh day of logs in overnight and serving queries from the
artifact all day.

Run with::

    python examples/operator_trace_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import ModelConfig, ScenarioConfig, TrafficPatternModel, generate_scenario
from repro.ingest.dedup import clean_batch
from repro.ingest.loader import read_record_batch_csv, write_records_csv
from repro.ingest.preprocess import preprocess_trace
from repro.ingest.records import BaseStationInfo
from repro.io.server import ModelServer
from repro.synth.geocoder import SyntheticGeocoder
from repro.vectorize.vectorizer import TrafficVectorizer
from repro.viz.ascii import ascii_heatmap


def main() -> None:
    # 1. Produce a raw operator trace: session-level logs with injected
    #    duplicates and conflicting records, generated directly as a
    #    columnar RecordBatch (the vectorized data plane).
    print("Generating raw session-level logs (this exercises the full ingestion path)...")
    scenario = generate_scenario(
        ScenarioConfig(
            num_towers=40,
            num_users=300,
            num_days=7,
            seed=7,
            generate_sessions=True,
            sessions_as_batch=True,
        )
    )
    raw_batch = scenario.session_batch()
    print(f"  raw records: {len(raw_batch):,} "
          f"(including {scenario.corruption_report.num_duplicates_added:,} duplicates and "
          f"{scenario.corruption_report.num_conflicts_added:,} conflicting copies)")

    # 2. Round-trip the trace through CSV, as an operator export would be.
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.csv"
        write_records_csv(raw_batch, trace_path)
        print(f"  wrote {trace_path.stat().st_size / 1e6:.1f} MB trace to {trace_path.name}")
        batch = read_record_batch_csv(trace_path)

    # 3. Preprocess: dedup + conflict resolution (columnar), geocoding,
    #    traffic density.
    stations = [BaseStationInfo(t.tower_id, t.address) for t in scenario.city.towers]
    geocoder = SyntheticGeocoder.from_towers(scenario.city.towers)
    result = preprocess_trace(batch, stations, geocoder)
    report = result.report
    print("\nPreprocessing report:")
    print(f"  exact duplicates removed : {report.dedup.num_exact_duplicates_removed:,}")
    print(f"  conflict groups resolved : {report.dedup.num_conflict_groups:,}")
    print(f"  clean records            : {report.num_clean_records:,}")
    print(f"  stations geocoded        : {report.geocoding.num_resolved}/{report.geocoding.num_stations}")

    print("\nTraffic density across the city (bytes/km², dark = low):")
    print(ascii_heatmap(result.density.normalized() ** 0.5))

    # 4. Vectorize the clean batch and fit the pattern model.
    vectorizer = TrafficVectorizer()
    vectorized = vectorizer.from_batch(
        result.record_batch(),
        scenario.window,
        tower_ids=scenario.traffic.tower_ids.tolist(),
    )
    model = TrafficPatternModel(ModelConfig(num_clusters=5))
    fit = model.fit(vectorized.raw, city=scenario.city)
    print("\nPatterns identified from the cleaned operator trace:")
    for summary in fit.summaries():
        print(f"  #{summary.cluster_label + 1} {summary.region.value:<14} "
              f"{summary.num_towers:>3} towers ({summary.percentage:.1f}%)")

    # 5. Persist the fitted model: fit once, query forever.  The bundle is a
    #    directory holding arrays.npz + manifest.json and round-trips the
    #    result bit-for-bit.
    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "model_bundle"
        model.save(bundle)
        size_kb = sum(f.stat().st_size for f in bundle.iterdir()) / 1024
        print(f"\nSaved the fitted model to {bundle.name}/ ({size_kb:.0f} KB)")

        # 6. Overnight, a fresh batch of logs arrives.  Fold it into the
        #    persisted model: the new records are scatter-added onto the
        #    stored slot grid and only the stages whose inputs changed are
        #    re-run — no city model needed, the persisted POI profiles
        #    re-label the fresh cut.
        overnight = generate_scenario(
            ScenarioConfig(
                num_towers=40,
                num_users=60,
                num_days=7,
                seed=8,
                generate_sessions=True,
                sessions_as_batch=True,
            )
        )
        fresh, _ = clean_batch(overnight.session_batch())
        loaded = TrafficPatternModel.load(bundle)
        updated = loaded.update(fresh)
        reused = updated.extras["stages_reused"]
        print(f"Folded {len(fresh):,} fresh records into the stored model "
              f"(stages reused: {', '.join(reused) if reused else 'none'})")
        loaded.save(bundle)

        # 7. Serve queries from the updated artifact — summaries, region
        #    predictions and memoised convex decompositions, all without
        #    ever re-running the fit.
        server = ModelServer.from_artifact(bundle)
        tower = server.tower_ids()[0]
        decomposition = server.decompose(tower)
        server.decompose(tower)  # second call is a cache hit
        print("\nServing from the updated bundle:")
        print(f"  tower {tower} region     : {server.predict_region(tower).value}")
        print(f"  tower {tower} decomposes : {decomposition.as_dict()} "
              f"(residual {decomposition.residual:.4f})")
        print(f"  server stats             : {server.stats()}")


if __name__ == "__main__":
    main()
